"""Pixel reconstruction shared by the encoder and every decoder.

Keeping dequantization, IDCT, prediction, and clipping in one place makes
the encoder's local reconstruction, the reference sequential decoder, and
the parallel tile decoders bit-identical by construction — the property the
parallel==sequential integration tests then verify end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.mpeg2 import dct
from repro.mpeg2.constants import PictureType
from repro.mpeg2.frames import Frame
from repro.mpeg2.macroblock import Macroblock
from repro.mpeg2.motion import predict_macroblock
from repro.mpeg2.tables import (
    DEFAULT_INTRA_QUANT_MATRIX,
    DEFAULT_NON_INTRA_QUANT_MATRIX,
    quantiser_scale_from_code,
)


@dataclass(frozen=True)
class QuantMatrices:
    """The quantization matrices in effect (from the sequence header)."""

    intra: np.ndarray = field(
        default_factory=lambda: DEFAULT_INTRA_QUANT_MATRIX
    )
    non_intra: np.ndarray = field(
        default_factory=lambda: DEFAULT_NON_INTRA_QUANT_MATRIX
    )

    @classmethod
    def from_sequence(cls, sequence) -> "QuantMatrices":
        return cls(
            intra=(
                sequence.intra_matrix
                if sequence.intra_matrix is not None
                else DEFAULT_INTRA_QUANT_MATRIX
            ),
            non_intra=(
                sequence.non_intra_matrix
                if sequence.non_intra_matrix is not None
                else DEFAULT_NON_INTRA_QUANT_MATRIX
            ),
        )


DEFAULT_MATRICES = QuantMatrices()


def _residuals(
    mb: Macroblock, intra: bool, matrices: QuantMatrices, dc_scaler: int = 8
) -> np.ndarray:
    """Dequantize + IDCT all six blocks; returns (6, 8, 8) float64.

    Uncoded blocks come back as zeros.
    """
    qscale = quantiser_scale_from_code(mb.qscale_code)
    scans = np.zeros((6, 64), dtype=np.int32)
    for b in range(6):
        if mb.blocks[b] is not None:
            scans[b] = mb.blocks[b]
    blocks = dct.scan_to_block(scans)
    if intra:
        coeffs = dct.dequantize_intra(blocks, qscale, matrices.intra, dc_scaler)
    else:
        coeffs = dct.dequantize_non_intra(blocks, qscale, matrices.non_intra)
    return dct.idct(coeffs)


def _assemble_luma(res: np.ndarray) -> np.ndarray:
    """Stack the four 8x8 luma residual blocks into a 16x16 tile."""
    out = np.empty((16, 16), dtype=np.float64)
    out[:8, :8] = res[0]
    out[:8, 8:] = res[1]
    out[8:, :8] = res[2]
    out[8:, 8:] = res[3]
    return out


def reconstruct_macroblock(
    mb: Macroblock,
    picture_type: PictureType,
    out: Frame,
    fwd: Optional[Frame],
    bwd: Optional[Frame],
    mb_width: int,
    matrices: QuantMatrices = DEFAULT_MATRICES,
    dc_scaler: int = 8,
) -> None:
    """Reconstruct one macroblock into ``out`` in place."""
    mb_x, mb_y = mb.address % mb_width, mb.address // mb_width

    if mb.intra:
        res = _residuals(mb, intra=True, matrices=matrices, dc_scaler=dc_scaler)
        y = np.clip(np.rint(_assemble_luma(res)), 0, 255).astype(np.uint8)
        cb = np.clip(np.rint(res[4]), 0, 255).astype(np.uint8)
        cr = np.clip(np.rint(res[5]), 0, 255).astype(np.uint8)
    else:
        mv_fwd = mb.mv_fwd
        mv_bwd = mb.mv_bwd
        if picture_type == PictureType.P and not mb.motion_forward:
            # "No MC" macroblock: zero forward vector (§7.6.3.5)
            mv_fwd = (0, 0)
        py, pcb, pcr = predict_macroblock(fwd, bwd, mb_x, mb_y, mv_fwd, mv_bwd)
        if mb.pattern and any(blk is not None for blk in mb.blocks):
            res = _residuals(mb, intra=False, matrices=matrices)
            py = py + np.rint(_assemble_luma(res)).astype(np.int64)
            pcb = pcb + np.rint(res[4]).astype(np.int64)
            pcr = pcr + np.rint(res[5]).astype(np.int64)
        y = np.clip(py, 0, 255).astype(np.uint8)
        cb = np.clip(pcb, 0, 255).astype(np.uint8)
        cr = np.clip(pcr, 0, 255).astype(np.uint8)

    out.y[mb_y * 16 : mb_y * 16 + 16, mb_x * 16 : mb_x * 16 + 16] = y
    out.cb[mb_y * 8 : mb_y * 8 + 8, mb_x * 8 : mb_x * 8 + 8] = cb
    out.cr[mb_y * 8 : mb_y * 8 + 8, mb_x * 8 : mb_x * 8 + 8] = cr
