"""Stream conformance checking (within this codec's supported subset).

:func:`validate_stream` walks an encoded stream and verifies the structural
invariants every component downstream relies on.  It reports findings
instead of raising, so tools can show all problems at once; ``ok`` is True
when nothing above WARNING severity was found.

Checked invariants:

- stream framing: sequence header first, sequence end last;
- every picture carries its coding extension with legal f_codes for its
  type (P needs forward, B needs both);
- temporal references cover each GOP without duplicates;
- every slice row is inside the picture and rows appear in order;
- every macroblock of every picture is accounted for exactly once
  (coded or skipped) — the invariant the splitter depends on;
- B pictures only appear when two anchors are available, and the first
  picture of a closed GOP is an I picture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import List

from repro.bitstream import BitstreamError
from repro.mpeg2.constants import PictureType
from repro.mpeg2.parser import MacroblockParser, PictureScanner


class Severity(IntEnum):
    INFO = 0
    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class Finding:
    severity: Severity
    picture: int  # -1 for stream-level findings
    message: str

    def __str__(self) -> str:
        where = "stream" if self.picture < 0 else f"picture {self.picture}"
        return f"[{self.severity.name}] {where}: {self.message}"


@dataclass
class ValidationReport:
    findings: List[Finding] = field(default_factory=list)
    pictures: int = 0
    macroblocks: int = 0

    @property
    def ok(self) -> bool:
        return all(f.severity < Severity.ERROR for f in self.findings)

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.ERROR]

    def add(self, severity: Severity, picture: int, message: str) -> None:
        self.findings.append(Finding(severity, picture, message))


def validate_stream(stream: bytes) -> ValidationReport:
    report = ValidationReport()
    if not stream.startswith(b"\x00\x00\x01\xb3"):
        report.add(Severity.ERROR, -1, "does not start with a sequence header")
        return report
    if not stream.rstrip(b"\x00").endswith(b"\x00\x00\x01\xb7"):
        report.add(Severity.WARNING, -1, "no sequence_end_code at end of stream")

    try:
        sequence, pictures = PictureScanner(stream).scan()
    except (BitstreamError, ValueError) as exc:
        report.add(Severity.ERROR, -1, f"scan failed: {exc}")
        return report
    if sequence.width % 16 or sequence.height % 16:
        report.add(
            Severity.ERROR,
            -1,
            f"raster {sequence.width}x{sequence.height} not macroblock aligned",
        )
        return report

    parser = MacroblockParser(sequence)
    n_mbs = (sequence.width // 16) * (sequence.height // 16)
    anchors_seen = 0
    gop_trefs: List[int] = []

    for unit in pictures:
        report.pictures += 1
        i = unit.coded_index
        if unit.new_gop:
            if gop_trefs and len(set(gop_trefs)) != len(gop_trefs):
                report.add(
                    Severity.ERROR, i, "duplicate temporal references in GOP"
                )
            gop_trefs = []
        try:
            parsed = parser.parse_picture(unit.data)
        except (BitstreamError, ValueError) as exc:
            report.add(Severity.ERROR, i, f"parse failed: {exc}")
            continue
        hdr = parsed.header
        gop_trefs.append(hdr.temporal_reference)

        # f_code legality per picture type
        if hdr.picture_type in (PictureType.P, PictureType.B):
            for t in range(2):
                if not 1 <= hdr.f_code[0][t] <= 9:
                    report.add(
                        Severity.ERROR, i, f"illegal forward f_code {hdr.f_code[0]}"
                    )
        if hdr.picture_type == PictureType.B:
            for t in range(2):
                if not 1 <= hdr.f_code[1][t] <= 9:
                    report.add(
                        Severity.ERROR, i, f"illegal backward f_code {hdr.f_code[1]}"
                    )

        # reference availability
        if unit.new_gop and unit.gop is not None and unit.gop.closed_gop:
            if hdr.picture_type != PictureType.I:
                report.add(
                    Severity.ERROR, i, "closed GOP does not start with an I picture"
                )
            anchors_seen = 0
        if hdr.picture_type == PictureType.P and anchors_seen < 1:
            report.add(Severity.ERROR, i, "P picture without a prior anchor")
        if hdr.picture_type == PictureType.B and anchors_seen < 2:
            report.add(Severity.ERROR, i, "B picture without two anchors")
        if hdr.picture_type != PictureType.B:
            anchors_seen += 1

        # macroblock coverage
        addresses = sorted(it.mb.address for it in parsed.items)
        report.macroblocks += len(addresses)
        if addresses != list(range(n_mbs)):
            missing = n_mbs - len(set(addresses))
            dupes = len(addresses) - len(set(addresses))
            report.add(
                Severity.ERROR,
                i,
                f"macroblock coverage broken ({missing} missing, {dupes} duplicated)",
            )

        # slice rows in order
        rows = [it.slice_row for it in parsed.items]
        if rows != sorted(rows):
            report.add(Severity.ERROR, i, "slice rows out of order")

        # motion vectors inside the picture
        for it in parsed.items:
            for mv in (it.mb.mv_fwd, it.mb.mv_bwd):
                if mv is None:
                    continue
                mb_x = it.mb.address % parsed.mb_width
                mb_y = it.mb.address // parsed.mb_width
                from repro.mpeg2.motion import reference_rect

                r = reference_rect(mb_x, mb_y, mv)
                if r.x0 < 0 or r.y0 < 0 or r.x1 > sequence.width or r.y1 > sequence.height:
                    report.add(
                        Severity.ERROR,
                        i,
                        f"motion vector {mv} of macroblock {it.mb.address} "
                        "reads outside the picture",
                    )
                    break

    if report.pictures == 0:
        report.add(Severity.ERROR, -1, "stream contains no pictures")
    return report
