"""Rate control: drive the encoder toward a bits-per-pixel target.

The paper's test streams are compressed to ~0.3 bpp (DVD clips higher,
§5.2).  The base encoder uses fixed quantizers; this module adds a simple
two-level controller in the spirit of MPEG-2 Test Model 5:

- a **sequence-level loop** adjusts a global quantizer offset from the
  running bit debt (how far the stream is above/below target);
- a **picture-type weighting** keeps the usual I > P > B size ordering by
  giving B pictures a coarser quantizer.

It is deliberately simple — the experiments need streams *at* a target
rate, not optimal RD performance — but it is a real feedback controller
with state, not a constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.mpeg2.constants import PictureType
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.frames import Frame


@dataclass
class RateControlConfig:
    """Controller parameters."""

    target_bpp: float = 0.30
    # quantiser_scale_code offsets per picture type relative to the base
    type_offset: dict = field(
        default_factory=lambda: {
            PictureType.I: -2,
            PictureType.P: 0,
            PictureType.B: 3,
        }
    )
    # proportional gain: codes of adjustment per 100% bit debt
    gain: float = 6.0
    min_code: int = 2
    max_code: int = 31
    initial_code: int = 8


class RateController:
    """Per-picture quantizer selection from running bit debt."""

    def __init__(self, cfg: RateControlConfig, pixels_per_frame: int):
        self.cfg = cfg
        self.pixels_per_frame = pixels_per_frame
        self.target_frame_bits = cfg.target_bpp * pixels_per_frame
        self.produced_bits = 0.0
        self.budgeted_bits = 0.0
        self.history: List[int] = []

    @property
    def debt_ratio(self) -> float:
        """(produced - budget) / budget so far; positive = too many bits."""
        if self.budgeted_bits <= 0:
            return 0.0
        return (self.produced_bits - self.budgeted_bits) / self.budgeted_bits

    def quantiser_code(self, ptype: PictureType) -> int:
        code = (
            self.cfg.initial_code
            + self.cfg.type_offset[ptype]
            + self.cfg.gain * self.debt_ratio
        )
        code = int(round(code))
        code = max(self.cfg.min_code, min(self.cfg.max_code, code))
        self.history.append(code)
        return code

    def account(self, picture_bits: int) -> None:
        self.produced_bits += picture_bits
        self.budgeted_bits += self.target_frame_bits


class RateControlledEncoder:
    """Encode a clip to a bits-per-pixel target.

    Wraps the base :class:`Encoder`, re-planning quantizers picture by
    picture.  Pictures are encoded one at a time so the controller sees
    the produced size of picture *n* before choosing quantizers for
    picture *n + 1* — the same feedback structure TM5 uses.
    """

    def __init__(
        self,
        base: Optional[EncoderConfig] = None,
        rate: Optional[RateControlConfig] = None,
    ):
        self.base = base or EncoderConfig()
        self.rate = rate or RateControlConfig()
        self.controller: Optional[RateController] = None

    def encode(self, frames: Sequence[Frame]) -> bytes:
        if not frames:
            raise ValueError("no frames to encode")
        ctrl = RateController(self.rate, frames[0].n_pixels)
        self.controller = ctrl

        # The base encoder encodes the whole sequence in one call; to give
        # the controller per-picture feedback we drive it through a
        # quant_modulator hook that reads the current picture's chosen
        # code, and we track sizes from the encoder's stats as they grow.
        chosen: dict = {"code": self.rate.initial_code}

        def modulator(mb_x: int, mb_y: int, activity: float) -> int:
            return chosen["code"]

        cfg = EncoderConfig(
            gop_size=self.base.gop_size,
            b_frames=self.base.b_frames,
            qscale_code_intra=self.rate.initial_code,
            qscale_code_inter=self.rate.initial_code,
            search_range=self.base.search_range,
            f_code=self.base.f_code,
            fps=self.base.fps,
            closed_gop=self.base.closed_gop,
            allow_skips=self.base.allow_skips,
            quant_modulator=modulator,
        )
        encoder = Encoder(cfg)

        # Hook the per-picture boundary: wrap _encode_picture.
        original = encoder._encode_picture

        def instrumented(bw, frame, plan, fwd, bwd):
            chosen["code"] = ctrl.quantiser_code(plan.picture_type)
            start_bits = len(bw)
            out = original(bw, frame, plan, fwd, bwd)
            ctrl.account(len(bw) - start_bits)
            return out

        encoder._encode_picture = instrumented  # type: ignore[method-assign]
        data = encoder.encode(frames)
        self.stats = encoder.stats
        return data

    def achieved_bpp(self, data: bytes, frames: Sequence[Frame]) -> float:
        return 8.0 * len(data) / (frames[0].n_pixels * len(frames))
