"""MSB-first bit writer used by the encoder and the sub-picture builder."""

from __future__ import annotations


class BitWriter:
    """Accumulate an MSB-first bitstream.

    Bits are buffered in an integer accumulator and flushed to a
    ``bytearray`` one byte at a time, keeping writes O(1) amortized even for
    long streams.
    """

    __slots__ = ("_buf", "_acc", "_nacc")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._acc = 0  # pending bits, MSB-first, low _nacc bits valid
        self._nacc = 0

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return 8 * len(self._buf) + self._nacc

    @property
    def bitpos(self) -> int:
        return len(self)

    def write(self, value: int, n: int) -> None:
        """Append the low ``n`` bits of ``value`` (MSB first)."""
        if n < 0:
            raise ValueError("negative bit width")
        if n == 0:
            return
        if value < 0 or value >= (1 << n):
            raise ValueError(f"value {value} does not fit in {n} bits")
        self._acc = (self._acc << n) | value
        self._nacc += n
        while self._nacc >= 8:
            self._nacc -= 8
            self._buf.append((self._acc >> self._nacc) & 0xFF)
        self._acc &= (1 << self._nacc) - 1

    def write_bit(self, bit: int) -> None:
        self.write(bit & 1, 1)

    def write_signed(self, value: int, n: int) -> None:
        """Append an ``n``-bit two's-complement signed integer."""
        if value < -(1 << (n - 1)) or value >= (1 << (n - 1)):
            raise ValueError(f"signed value {value} does not fit in {n} bits")
        self.write(value & ((1 << n) - 1), n)

    def align(self, fill: int = 0) -> None:
        """Pad with ``fill`` bits (0 or 1) to the next byte boundary."""
        while self._nacc:
            self.write_bit(fill)

    def write_start_code(self, code: int) -> None:
        """Byte-align then emit the 32-bit start code ``00 00 01 code``."""
        self.align()
        self._buf.extend((0x00, 0x00, 0x01, code & 0xFF))

    def write_bytes(self, data: bytes) -> None:
        """Append raw bytes; requires the writer to be byte aligned."""
        if self._nacc:
            raise ValueError("write_bytes requires byte alignment")
        self._buf.extend(data)

    def getvalue(self) -> bytes:
        """Return the stream so far, zero-padding any final partial byte."""
        if self._nacc == 0:
            return bytes(self._buf)
        tail = (self._acc << (8 - self._nacc)) & 0xFF
        return bytes(self._buf) + bytes((tail,))
