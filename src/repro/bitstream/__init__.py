"""Bit-level I/O substrate.

MPEG-2 video is an MSB-first bitstream with byte-aligned 32-bit start codes
(``00 00 01 xx``).  :class:`BitReader` and :class:`BitWriter` provide the
primitive operations every layer above builds on: n-bit reads/writes, peeking
(needed by the VLC decoder), byte alignment, and start-code scanning (the
root splitter's entire job is a start-code scan).
"""

from repro.bitstream.reader import BitReader, BitstreamError, find_start_codes
from repro.bitstream.writer import BitWriter

__all__ = ["BitReader", "BitWriter", "BitstreamError", "find_start_codes"]
