"""MSB-first bit reader with start-code scanning.

The reader keeps an explicit bit cursor into an immutable ``bytes`` buffer so
that sub-picture construction can copy *whole bytes* containing a partial
slice and record only a 0-7 bit skip count, exactly as the paper's State
Propagation Header does (section 4.3, figure 4).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


class BitstreamError(Exception):
    """Raised on malformed bitstreams or reads past the end of the buffer."""


class BitReader:
    """Read an MSB-first bitstream from a ``bytes``-like buffer.

    Parameters
    ----------
    data:
        The underlying buffer.  It is never copied; positions are tracked as
        a single absolute bit offset so slicing information (byte offset +
        skip bits) can be exported for zero-copy sub-picture assembly.
    start_bit:
        Absolute bit position to start reading from (defaults to 0).
    """

    __slots__ = ("data", "pos", "nbits")

    def __init__(self, data: bytes, start_bit: int = 0):
        # bytes input is immutable already — don't copy it (this runs once
        # per partial-slice record on the tile decoders' hot path).
        self.data = data if type(data) is bytes else bytes(data)
        self.pos = start_bit
        self.nbits = 8 * len(self.data)
        if start_bit > self.nbits:
            raise BitstreamError("start_bit beyond end of buffer")

    # ------------------------------------------------------------------ #
    # position queries
    # ------------------------------------------------------------------ #

    @property
    def byte_pos(self) -> int:
        """Byte index of the current bit cursor (rounded down)."""
        return self.pos >> 3

    @property
    def bit_in_byte(self) -> int:
        """Offset (0-7) of the cursor within its current byte."""
        return self.pos & 7

    def bits_left(self) -> int:
        return self.nbits - self.pos

    def at_byte_boundary(self) -> bool:
        return (self.pos & 7) == 0

    # ------------------------------------------------------------------ #
    # core reads
    # ------------------------------------------------------------------ #

    def read(self, n: int) -> int:
        """Read ``n`` bits (0 <= n <= 32) and return them as an unsigned int."""
        v = self.peek(n)
        self.pos += n
        return v

    def peek(self, n: int) -> int:
        """Return the next ``n`` bits without consuming them.

        Peeking past the physical end of the buffer pads with zero bits; this
        mirrors hardware VLC decoders which prefetch, and lets maximum-length
        table lookups run near the end of a slice.  An actual *read* past the
        end still raises, via the explicit check here on the consumed range.
        """
        if n == 0:
            return 0
        if n < 0 or n > 32:
            raise ValueError(f"peek width out of range: {n}")
        if self.pos + n > self.nbits + 32:
            raise BitstreamError("peek far past end of bitstream")
        first_byte = self.pos >> 3
        # Gather enough bytes to cover n bits after the in-byte offset.
        last_byte = (self.pos + n + 7) >> 3
        chunk = self.data[first_byte:last_byte]
        # Zero-pad if near the end of the buffer.
        need = last_byte - first_byte
        if len(chunk) < need:
            chunk = chunk + b"\x00" * (need - len(chunk))
        acc = int.from_bytes(chunk, "big")
        total_bits = 8 * need
        shift = total_bits - (self.pos & 7) - n
        return (acc >> shift) & ((1 << n) - 1)

    def read_bit(self) -> int:
        return self.read(1)

    def skip(self, n: int) -> None:
        """Advance the cursor by ``n`` bits without decoding."""
        if self.pos + n > self.nbits:
            raise BitstreamError("skip past end of bitstream")
        self.pos += n

    def read_signed(self, n: int) -> int:
        """Read an ``n``-bit two's-complement signed integer."""
        v = self.read(n)
        if v >= 1 << (n - 1):
            v -= 1 << n
        return v

    # ------------------------------------------------------------------ #
    # alignment and start codes
    # ------------------------------------------------------------------ #

    def align(self) -> None:
        """Advance to the next byte boundary (no-op if already aligned)."""
        self.pos = (self.pos + 7) & ~7

    def next_start_code(self) -> int | None:
        """Align and scan forward to the next ``00 00 01 xx`` start code.

        Returns the start-code *value* ``xx`` with the cursor positioned just
        after it, or ``None`` if the buffer is exhausted.  The cursor is left
        at end-of-buffer when no code is found.
        """
        self.align()
        i = self.data.find(b"\x00\x00\x01", self.byte_pos)
        if i < 0 or i + 3 >= len(self.data):
            self.pos = self.nbits
            return None
        self.pos = 8 * (i + 4)
        return self.data[i + 3]

    def peek_start_code(self) -> int | None:
        """Like :meth:`next_start_code` but leaves the cursor untouched."""
        save = self.pos
        try:
            return self.next_start_code()
        finally:
            self.pos = save


def find_start_codes(data: bytes, start: int = 0) -> Iterator[Tuple[int, int]]:
    """Yield ``(byte_offset, code_value)`` for every start code in ``data``.

    ``byte_offset`` points at the first ``00`` of the prefix.  This is the
    linear scan the root splitter performs: it is O(len) with no VLC work,
    which is why picture-level splitting is cheap (Table 1, "very low").
    """
    i = start
    n = len(data)
    while True:
        i = data.find(b"\x00\x00\x01", i)
        if i < 0 or i + 3 >= n:
            return
        yield i, data[i + 3]
        i += 3


def split_at_codes(data: bytes, codes: List[int]) -> List[Tuple[int, int, int]]:
    """Partition ``data`` into regions beginning at start codes in ``codes``.

    Returns ``(code_value, begin, end)`` byte ranges where ``begin`` points at
    the start-code prefix.  Regions run to the next listed code or EOF.
    """
    marks = [(off, val) for off, val in find_start_codes(data) if val in codes]
    out: List[Tuple[int, int, int]] = []
    for idx, (off, val) in enumerate(marks):
        end = marks[idx + 1][0] if idx + 1 < len(marks) else len(data)
        out.append((val, off, end))
    return out
