"""MSB-first bit reader with start-code scanning.

The reader keeps an explicit bit cursor into an immutable ``bytes`` buffer so
that sub-picture construction can copy *whole bytes* containing a partial
slice and record only a 0-7 bit skip count, exactly as the paper's State
Propagation Header does (section 4.3, figure 4).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


class BitstreamError(Exception):
    """Raised on malformed bitstreams or reads past the end of the buffer."""


class BitReader:
    """Read an MSB-first bitstream from a ``bytes``-like buffer.

    Parameters
    ----------
    data:
        The underlying buffer.  It is never copied; positions are tracked as
        a single absolute bit offset so slicing information (byte offset +
        skip bits) can be exported for zero-copy sub-picture assembly.
    start_bit:
        Absolute bit position to start reading from (defaults to 0).
    """

    __slots__ = ("data", "pos", "nbits", "_win", "_win_start")

    #: Cached-window width.  Refills slice this many bytes at once; every
    #: peek inside the window is a shift+mask with no byte slicing.
    _WIN_BYTES = 16
    _WIN_BITS = 8 * _WIN_BYTES

    def __init__(self, data: bytes, start_bit: int = 0):
        # bytes input is immutable already — don't copy it (this runs once
        # per partial-slice record on the tile decoders' hot path).
        self.data = data if type(data) is bytes else bytes(data)
        self.pos = start_bit
        self.nbits = 8 * len(self.data)
        # Window cache starts invalid; validity is re-derived from ``pos``
        # on every peek because callers assign ``pos`` directly (and the
        # buffer is immutable, so the cache can never hold stale bytes).
        self._win = 0
        self._win_start = -(1 << 62)
        if start_bit > self.nbits:
            raise BitstreamError("start_bit beyond end of buffer")

    # ------------------------------------------------------------------ #
    # position queries
    # ------------------------------------------------------------------ #

    @property
    def byte_pos(self) -> int:
        """Byte index of the current bit cursor (rounded down)."""
        return self.pos >> 3

    @property
    def bit_in_byte(self) -> int:
        """Offset (0-7) of the cursor within its current byte."""
        return self.pos & 7

    def bits_left(self) -> int:
        return self.nbits - self.pos

    def at_byte_boundary(self) -> bool:
        return (self.pos & 7) == 0

    # ------------------------------------------------------------------ #
    # core reads
    # ------------------------------------------------------------------ #

    def read(self, n: int) -> int:
        """Read ``n`` bits (0 <= n <= 32) and return them as an unsigned int."""
        v = self.peek(n)
        self.pos += n
        return v

    def peek(self, n: int) -> int:
        """Return the next ``n`` bits without consuming them.

        Peeking past the physical end of the buffer pads with zero bits; this
        mirrors hardware VLC decoders which prefetch, and lets maximum-length
        table lookups run near the end of a slice.  An actual *read* past the
        end still raises, via the explicit check here on the consumed range.
        """
        if n <= 0:
            if n == 0:
                return 0
            raise ValueError(f"peek width out of range: {n}")
        if n > 32:
            raise ValueError(f"peek width out of range: {n}")
        pos = self.pos
        if pos + n > self.nbits + 32:
            raise BitstreamError("peek far past end of bitstream")
        off = pos - self._win_start
        if off < 0 or off + n > self._WIN_BITS:
            self._refill()
            off = pos - self._win_start
        return (self._win >> (self._WIN_BITS - off - n)) & ((1 << n) - 1)

    def peek_bits(self, n: int) -> int:
        """Unchecked :meth:`peek` for VLC table lookups (0 < n <= 32).

        Skips the argument validation and the far-past-end guard; bits past
        the physical end read as zero without bound.  Callers must bound
        consumption themselves, e.g. via :meth:`skip_bits`.
        """
        pos = self.pos
        off = pos - self._win_start
        if off < 0 or off + n > self._WIN_BITS:
            self._refill()
            off = pos - self._win_start
        return (self._win >> (self._WIN_BITS - off - n)) & ((1 << n) - 1)

    def _refill(self) -> None:
        """Re-center the cached window on the current byte of ``pos``."""
        first = self.pos >> 3
        chunk = self.data[first : first + self._WIN_BYTES]
        if len(chunk) < self._WIN_BYTES:
            chunk = chunk + b"\x00" * (self._WIN_BYTES - len(chunk))
        self._win = int.from_bytes(chunk, "big")
        self._win_start = first << 3

    def read_bit(self) -> int:
        return self.read(1)

    def skip(self, n: int) -> None:
        """Advance the cursor by ``n`` bits without decoding."""
        if self.pos + n > self.nbits:
            raise BitstreamError("skip past end of bitstream")
        self.pos += n

    def skip_bits(self, n: int) -> None:
        """Alias of :meth:`skip` forming a pair with :meth:`peek_bits`."""
        pos = self.pos + n
        if pos > self.nbits:
            raise BitstreamError("skip past end of bitstream")
        self.pos = pos

    def read_signed(self, n: int) -> int:
        """Read an ``n``-bit two's-complement signed integer."""
        v = self.read(n)
        if v >= 1 << (n - 1):
            v -= 1 << n
        return v

    # ------------------------------------------------------------------ #
    # alignment and start codes
    # ------------------------------------------------------------------ #

    def align(self) -> None:
        """Advance to the next byte boundary (no-op if already aligned)."""
        self.pos = (self.pos + 7) & ~7

    def next_start_code(self) -> int | None:
        """Align and scan forward to the next ``00 00 01 xx`` start code.

        Returns the start-code *value* ``xx`` with the cursor positioned just
        after it, or ``None`` if the buffer is exhausted.  The cursor is left
        at end-of-buffer when no code is found.
        """
        self.align()
        i = self.data.find(b"\x00\x00\x01", self.byte_pos)
        if i < 0 or i + 3 >= len(self.data):
            self.pos = self.nbits
            return None
        self.pos = 8 * (i + 4)
        return self.data[i + 3]

    def peek_start_code(self) -> int | None:
        """Like :meth:`next_start_code` but leaves the cursor untouched."""
        save = self.pos
        try:
            return self.next_start_code()
        finally:
            self.pos = save


def find_start_codes(data: bytes, start: int = 0) -> Iterator[Tuple[int, int]]:
    """Yield ``(byte_offset, code_value)`` for every start code in ``data``.

    ``byte_offset`` points at the first ``00`` of the prefix.  This is the
    linear scan the root splitter performs: it is O(len) with no VLC work,
    which is why picture-level splitting is cheap (Table 1, "very low").
    """
    i = start
    n = len(data)
    while True:
        i = data.find(b"\x00\x00\x01", i)
        if i < 0 or i + 3 >= n:
            return
        yield i, data[i + 3]
        i += 3


def split_at_codes(data: bytes, codes: List[int]) -> List[Tuple[int, int, int]]:
    """Partition ``data`` into regions beginning at start codes in ``codes``.

    Returns ``(code_value, begin, end)`` byte ranges where ``begin`` points at
    the start-code prefix.  Regions run to the next listed code or EOF.
    """
    marks = [(off, val) for off, val in find_start_codes(data) if val in codes]
    out: List[Tuple[int, int, int]] = []
    for idx, (off, val) in enumerate(marks):
        end = marks[idx + 1][0] if idx + 1 < len(marks) else len(data)
        out.append((val, off, end))
    return out
