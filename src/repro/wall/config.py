"""Wall configuration: shared JSON geometry for CLI, broadcaster, receivers.

A :class:`WallSpec` is the *installation* description — how many projector
columns and rows, how wide the optical overlap band is, how thick the
physical bezels are, and any per-tile crop insets (a projector whose edge
pixels are masked off by the frame it sits in).  It deliberately excludes
the video raster: the same wall plays many streams, so the raster-specific
:class:`~repro.wall.layout.TileLayout` is derived per stream via
:meth:`WallSpec.to_layout`.

Bezels and crops are **presentation-only**: they choose which decoded
pixels reach the glass, never which pixels get decoded, so they can never
participate in bit-exactness checks (same rule as edge blending).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Union

from repro.mpeg2.motion import Rect
from repro.wall.layout import TileLayout


@dataclass(frozen=True)
class TileCrop:
    """Per-tile display inset in pixels (presentation-only)."""

    left: int = 0
    top: int = 0
    right: int = 0
    bottom: int = 0

    def __post_init__(self) -> None:
        if min(self.left, self.top, self.right, self.bottom) < 0:
            raise ValueError("crop insets must be non-negative")

    def to_dict(self) -> Dict[str, int]:
        return {
            "left": self.left,
            "top": self.top,
            "right": self.right,
            "bottom": self.bottom,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, int]) -> "TileCrop":
        return cls(
            left=int(d.get("left", 0)),
            top=int(d.get("top", 0)),
            right=int(d.get("right", 0)),
            bottom=int(d.get("bottom", 0)),
        )


@dataclass
class WallSpec:
    """An m x n projector wall: geometry plus presentation trim.

    ``cols``/``rows`` count projectors, ``overlap`` is the blending band
    along each interior edge in pixels, ``bezel_px`` the physical bezel
    thickness (display-time gap; decoded pixels under a bezel exist but
    never reach the glass), ``crops`` optional per-tile insets keyed by
    tile id.
    """

    cols: int
    rows: int
    overlap: int = 0
    bezel_px: int = 0
    name: str = "wall"
    crops: Dict[int, TileCrop] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cols < 1 or self.rows < 1:
            raise ValueError("wall needs at least one projector")
        if self.overlap < 0:
            raise ValueError("negative overlap")
        if self.bezel_px < 0:
            raise ValueError("negative bezel")
        for tid in self.crops:
            if not 0 <= tid < self.n_tiles:
                raise ValueError(f"crop for tile {tid} outside the wall")

    @property
    def n_tiles(self) -> int:
        return self.cols * self.rows

    def tile_crop(self, tid: int) -> TileCrop:
        return self.crops.get(tid, TileCrop())

    # ------------------------------- layout -------------------------------- #

    def to_layout(self, width: int, height: int) -> TileLayout:
        """Raster-specific tile geometry for one video stream."""
        return TileLayout(width, height, self.cols, self.rows, self.overlap)

    def display_rect(self, layout: TileLayout, tid: int) -> Rect:
        """Tile ``tid``'s display rect after its presentation crop.

        This is what the projector actually lights up; it must stay inside
        the decoded rect but takes no part in correctness checks.
        """
        r = layout.tile(tid).rect
        c = self.tile_crop(tid)
        out = Rect(r.x0 + c.left, r.y0 + c.top, r.x1 - c.right, r.y1 - c.bottom)
        if out.is_empty():
            raise ValueError(f"crop empties tile {tid}'s display rect")
        return out

    # -------------------------------- JSON --------------------------------- #

    def to_dict(self) -> Dict:
        d: Dict = {
            "name": self.name,
            "cols": self.cols,
            "rows": self.rows,
            "overlap": self.overlap,
            "bezel_px": self.bezel_px,
        }
        if self.crops:
            d["crops"] = {str(t): c.to_dict() for t, c in self.crops.items()}
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "WallSpec":
        crops = {
            int(t): TileCrop.from_dict(c) for t, c in d.get("crops", {}).items()
        }
        return cls(
            cols=int(d["cols"]),
            rows=int(d["rows"]),
            overlap=int(d.get("overlap", 0)),
            bezel_px=int(d.get("bezel_px", 0)),
            name=str(d.get("name", "wall")),
            crops=crops,
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "WallSpec":
        return cls.from_dict(json.loads(Path(path).read_text()))
