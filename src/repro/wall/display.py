"""Wall-image assembly and projector edge blending.

Correctness assembly (:func:`assemble_wall`) is exact: every wall pixel is
taken from its partition owner, so the parallel==sequential tests compare
bit-exact images.  :func:`edge_blend_weights` models the optical blending a
real wall applies across projector overlaps (a linear ramp), used by the
display example — blending happens in light, not in the decoded data, so it
never participates in correctness checks.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.mpeg2.frames import Frame
from repro.wall.layout import TileLayout


def assemble_wall(layout: TileLayout, tile_frames: Dict[int, Frame]) -> Frame:
    """Assemble the wall image from per-tile decoded frames.

    ``tile_frames[tid]`` is tile ``tid``'s full-raster frame, valid on at
    least the tile's coverage rect.  Each output pixel comes from its
    partition owner.
    """
    out = Frame.blank(layout.width, layout.height)
    for tile in layout:
        f = tile_frames[tile.tid]
        p = tile.partition
        out.y[p.y0 : p.y1, p.x0 : p.x1] = f.y[p.y0 : p.y1, p.x0 : p.x1]
        cx0, cy0, cx1, cy1 = p.x0 // 2, p.y0 // 2, p.x1 // 2, p.y1 // 2
        out.cb[cy0:cy1, cx0:cx1] = f.cb[cy0:cy1, cx0:cx1]
        out.cr[cy0:cy1, cx0:cx1] = f.cr[cy0:cy1, cx0:cx1]
    return out


def check_overlap_consistency(
    layout: TileLayout, tile_frames: Dict[int, Frame]
) -> int:
    """Count luma samples on which overlapping tiles disagree.

    Zero by construction when the parallel decoder is correct: overlapping
    tiles decode the same macroblocks from the same bits.
    """
    disagreements = 0
    for a in layout:
        for b in layout:
            if b.tid <= a.tid:
                continue
            inter = a.rect.intersect(b.rect)
            if inter.is_empty():
                continue
            ya = tile_frames[a.tid].y[inter.y0 : inter.y1, inter.x0 : inter.x1]
            yb = tile_frames[b.tid].y[inter.y0 : inter.y1, inter.x0 : inter.x1]
            disagreements += int(np.count_nonzero(ya != yb))
    return disagreements


def edge_blend_weights(layout: TileLayout, tid: int) -> np.ndarray:
    """Per-pixel light contribution of tile ``tid`` over its display rect.

    Linear ramps across the overlap bands; interior weight 1.0.  Adjacent
    tiles' ramps sum to 1.0 across a shared band, which is the property the
    display test asserts.
    """
    tile = layout.tile(tid)
    r = tile.rect
    w = np.ones((r.height, r.width), dtype=np.float64)
    ov = layout.overlap
    if ov > 0:
        ramp = (np.arange(ov) + 0.5) / ov
        if tile.col > 0:
            w[:, :ov] *= ramp[None, :]
        if tile.col < layout.m - 1:
            w[:, -ov:] *= ramp[::-1][None, :]
        if tile.row > 0:
            w[:ov, :] *= ramp[:, None]
        if tile.row < layout.n - 1:
            w[-ov:, :] *= ramp[::-1][:, None]
    return w


def projected_wall_luma(
    layout: TileLayout, tile_frames: Dict[int, Frame]
) -> np.ndarray:
    """Simulate the optically blended wall (luma only), as an audience sees
    it: each tile contributes its decoded pixels scaled by its blend ramp."""
    acc = np.zeros((layout.height, layout.width), dtype=np.float64)
    for tile in layout:
        r = tile.rect
        w = edge_blend_weights(layout, tile.tid)
        patch = tile_frames[tile.tid].y[r.y0 : r.y1, r.x0 : r.x1].astype(np.float64)
        acc[r.y0 : r.y1, r.x0 : r.x1] += patch * w
    return np.clip(np.rint(acc), 0, 255).astype(np.uint8)
