"""Wall receiver: subscribe, decode only this tile, present on the clock.

A :class:`WallReceiver` is one projector's process.  It subscribes to a
wall broadcast with its tile id (the bcast layer filters records by tile
bitmap on receive), tunes in at the anchor the SUBSCRIBE handshake names,
and from there decodes every picture — but reconstructs only its tile's
coverage rectangle expanded by the picture's decode-closure margin (see
:mod:`repro.wall.broadcast`).  Decoded frames leave in display order;
each one is digested over the tile's *partition* crop (the bit-exactness
surface) and then offered to the :class:`~repro.wall.clock.PresentationClock`,
which releases it on the shared wall timeline or drops it late.

Tune-in state machine::

    WAIT_SEQ --W_SEQ--> TUNING --anchor W_PIC--> DECODING --W_END--> DONE
                          ^                         |
                          +------- gap notice ------+

A gap (records lost beyond the NACK repair window) poisons the reference
chain exactly like a dropped P-picture, so the receiver discards state
and re-tunes at the next anchor-flagged picture; every picture skipped
while tuning is accounted in the drop ledger.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.mpeg2.batch_reconstruct import PlanBuilder, execute_plan
from repro.mpeg2.constants import MB_SIZE, PictureType
from repro.mpeg2.frames import Frame
from repro.mpeg2.motion import Rect, mb_rect
from repro.mpeg2.parser import MacroblockParser, ParsedPicture
from repro.mpeg2.reconstruct import QuantMatrices
from repro.mpeg2.structures import SequenceHeader
from repro.net.bcast import BroadcastReceiver, GapNotice
from repro.net.channel import Address, ChannelError
from repro.perf.metrics import families
from repro.service.session import PacedStreamDecoder
from repro.wall.broadcast import (
    PIC_ANCHOR,
    W_END,
    W_PIC,
    W_SEQ,
    decode_pic_payload,
    decode_seq_payload,
)
from repro.wall.clock import PresentationClock
from repro.wall.config import WallSpec
from repro.wall.layout import TileLayout


def expand_rect(rect: Rect, margin_px: int, width: int, height: int) -> Rect:
    """Grow ``rect`` by a margin, align outward to macroblocks, clip."""
    r = Rect(
        max(0, (rect.x0 - margin_px) // MB_SIZE * MB_SIZE),
        max(0, (rect.y0 - margin_px) // MB_SIZE * MB_SIZE),
        min(width, -(-(rect.x1 + margin_px) // MB_SIZE) * MB_SIZE),
        min(height, -(-(rect.y1 + margin_px) // MB_SIZE) * MB_SIZE),
    )
    return r


def reconstruct_rect(
    parsed: ParsedPicture,
    sequence: SequenceHeader,
    fwd: Optional[Frame],
    bwd: Optional[Frame],
    rect: Rect,
    matrices: Optional[QuantMatrices] = None,
) -> Frame:
    """Reconstruct only the macroblocks intersecting ``rect``.

    The returned frame is full-raster but valid only inside ``rect``
    (outside stays blank) — exactly the contract of a tile's coverage
    reference frames.  With ``rect`` spanning the raster this is
    bit-identical to :func:`repro.mpeg2.decoder.reconstruct_picture`.
    """
    ptype = parsed.header.picture_type
    if ptype == PictureType.P and fwd is None:
        raise ValueError("P-picture without forward reference")
    if ptype == PictureType.B and (fwd is None or bwd is None):
        raise ValueError("B-picture without two references")
    out = Frame.blank(sequence.width, sequence.height)
    matrices = matrices or QuantMatrices.from_sequence(sequence)
    builder = PlanBuilder(
        ptype,
        parsed.mb_width,
        sequence.width,
        sequence.height,
        matrices,
        parsed.header.dc_scaler,
    )
    mbx0 = rect.x0 // MB_SIZE
    mby0 = rect.y0 // MB_SIZE
    mbx1 = -(-rect.x1 // MB_SIZE)
    mby1 = -(-rect.y1 // MB_SIZE)
    for item in parsed.items:
        mb_x, mb_y = item.mb.mb_xy(parsed.mb_width)
        if mbx0 <= mb_x < mbx1 and mby0 <= mb_y < mby1:
            builder.add(item.mb)
    plan = builder.build()
    execute_plan(plan, out, fwd, bwd)
    return out


def _digest_crop(h, frame: Frame, part: Rect) -> None:
    """Digest the partition crop of one frame (luma + 4:2:0 chroma)."""
    h.update(np.ascontiguousarray(frame.y[part.y0 : part.y1, part.x0 : part.x1]).tobytes())
    cx0, cy0, cx1, cy1 = part.x0 // 2, part.y0 // 2, part.x1 // 2, part.y1 // 2
    h.update(np.ascontiguousarray(frame.cb[cy0:cy1, cx0:cx1]).tobytes())
    h.update(np.ascontiguousarray(frame.cr[cy0:cy1, cx0:cx1]).tobytes())


def tile_decode_digest(
    stream: bytes, layout: TileLayout, tid: int, start_at: int = 0
) -> str:
    """Oracle: SHA-256 over tile ``tid``'s partition crop of a clean
    full-raster decode, display order, starting at coded ``start_at``.

    A wall receiver tuned in at ``start_at`` must report exactly this
    digest — the margin-restricted reconstruction is bit-identical to the
    full decode on the displayed partition.
    """
    part = layout.tile(tid).partition
    dec = PacedStreamDecoder(stream, start_at=start_at)
    h = hashlib.sha256()
    while not dec.done:
        res = dec.step(drop=False)
        if res.frame is not None:
            _digest_crop(h, res.frame, part)
    tail = dec.flush()
    if tail is not None:
        _digest_crop(h, tail, part)
    return h.hexdigest()


# --------------------------------------------------------------------- #
# receiver
# --------------------------------------------------------------------- #

WAIT_SEQ = "wait_seq"
TUNING = "tuning"
DECODING = "decoding"
DONE = "done"


class WallReceiver:
    """One tile's subscribe → tune-in → decode → present loop."""

    def __init__(
        self,
        control: Address,
        tid: int,
        name: Optional[str] = None,
        clock: Optional[PresentationClock] = None,
        use_clock: bool = False,
        report_every_s: float = 0.5,
        on_frame: Optional[Callable[[int, Frame], None]] = None,
        connect_timeout: float = 10.0,
    ):
        self.tid = tid
        self.name = name or f"tile{tid}"
        self.on_frame = on_frame
        self.report_every_s = report_every_s
        self.rx = BroadcastReceiver(
            control, tiles=[tid], name=self.name, connect_timeout=connect_timeout
        )
        self.start_at = self.rx.start_at
        meta = self.rx.meta
        self.fps = float(meta.get("fps", 30.0))
        self.wall = WallSpec.from_dict(meta["wall"])
        self.layout: Optional[TileLayout] = None
        self.sequence: Optional[SequenceHeader] = None
        self.parser: Optional[MacroblockParser] = None
        self.matrices: Optional[QuantMatrices] = None
        if clock is not None:
            self.clock = clock
        elif use_clock:
            self.clock = PresentationClock(fps=self.fps, epoch=self.rx.epoch)
        else:
            self.clock = PresentationClock(fps=None)
        self.state = WAIT_SEQ
        self.tuned_at: Optional[int] = None
        self.retunes = 0
        self.decoded = 0
        self.displayed = 0
        self.dropped_tuning = 0
        self.dropped_gap = 0
        self._digest = hashlib.sha256()
        self._held: Optional[Frame] = None
        self._prev_anchor: Optional[Frame] = None
        self._display_idx = 0
        self._last_report = 0.0
        self.last_frame: Optional[Frame] = None

    # ------------------------------ the loop -------------------------------- #

    def run(self, max_wall_s: float = 120.0) -> Dict:
        """Consume the broadcast until W_END (or the wall-clock budget).

        A sender that goes away mid-stream ends the run instead of
        raising: the summary's non-``done`` state is the caller's signal.
        """
        deadline = time.monotonic() + max_wall_s
        while self.state != DONE and time.monotonic() < deadline:
            try:
                rec = self.rx.recv(timeout=0.5)
            except ChannelError:
                break
            if rec is None:
                continue
            if isinstance(rec, GapNotice):
                self._on_gap(len(rec.seqs))
                continue
            if rec.kind == W_SEQ:
                self._on_seq(rec.payload)
            elif rec.kind == W_PIC:
                self._on_pic(rec.payload)
            elif rec.kind == W_END:
                self._on_end()
            self._maybe_report()
        summary = self.summary()
        try:
            self.rx.report(summary)
        except ChannelError:
            pass
        return summary

    def _on_seq(self, payload: bytes) -> None:
        meta, sequence = decode_seq_payload(payload)
        self.sequence = sequence
        self.parser = MacroblockParser(sequence)
        self.matrices = QuantMatrices.from_sequence(sequence)
        self.layout = self.wall.to_layout(sequence.width, sequence.height)
        if self.state == WAIT_SEQ:
            self.state = TUNING

    def _on_pic(self, payload: bytes) -> None:
        if self.state not in (TUNING, DECODING) or self.parser is None:
            return
        pic = decode_pic_payload(payload)
        if self.state == TUNING:
            # First tune-in honours the handshake's start_at (records may
            # have been buffered ahead of it); a re-tune after a gap takes
            # the next anchor-flagged picture, whatever its index.
            floor = (self.start_at or 0) if self.tuned_at is None else 0
            if not (pic.flags & PIC_ANCHOR) or pic.coded_index < floor:
                self.dropped_tuning += 1
                self._count_drop("tuning")
                return
            self.state = DECODING
            if self.tuned_at is None:
                self.tuned_at = pic.coded_index
            else:
                self.retunes += 1
        self._decode(pic)

    def _decode(self, pic) -> None:
        assert self.sequence is not None and self.layout is not None
        tile = self.layout.tile(self.tid)
        rect = expand_rect(
            tile.coverage, pic.margin_px, self.sequence.width, self.sequence.height
        )
        parsed = self.parser.parse_picture(pic.data)
        if pic.ptype == PictureType.B:
            frame = reconstruct_rect(
                parsed, self.sequence, self._prev_anchor, self._held, rect,
                self.matrices,
            )
            self.decoded += 1
            self._emit(frame)
            return
        fwd = self._held if pic.ptype == PictureType.P else None
        frame = reconstruct_rect(
            parsed, self.sequence, fwd, None, rect, self.matrices
        )
        self.decoded += 1
        out = self._held
        self._prev_anchor = self._held
        self._held = frame
        if out is not None:
            self._emit(out)

    def _emit(self, frame: Frame) -> None:
        """One display-order frame: digest (bit-exactness), then present."""
        assert self.layout is not None
        part = self.layout.tile(self.tid).partition
        _digest_crop(self._digest, frame, part)
        self.last_frame = frame
        idx = self._display_idx
        self._display_idx += 1
        if self.clock.offer(idx):
            self.displayed += 1
            if self.on_frame is not None:
                self.on_frame(idx, frame)
        else:
            self._count_drop("late")
        self._gauge_lag()

    def _on_gap(self, n_lost: int) -> None:
        """Lost records poison the reference chain: re-tune at next anchor."""
        if self.state == DECODING:
            self.state = TUNING
            self._held = None
            self._prev_anchor = None
        self.dropped_gap += n_lost
        self._count_drop("gap", n_lost)

    def _on_end(self) -> None:
        if self.state == DECODING and self._held is not None:
            self._emit(self._held)
            self._held = None
        self.state = DONE

    # ---------------------------- observability ----------------------------- #

    def _count_drop(self, reason: str, n: int = 1) -> None:
        families().counter(
            "repro_wall_frames_dropped",
            "wall receiver frames not displayed, by reason",
            labelnames=("tile", "reason"),
        ).inc(n, tile=str(self.tid), reason=reason)

    def _gauge_lag(self) -> None:
        families().gauge(
            "repro_wall_receiver_lag_s",
            "wall receiver lag behind the presentation timeline",
            labelnames=("tile",),
        ).set(max(0.0, self.clock.last_lag_s), tile=str(self.tid))

    def _maybe_report(self) -> None:
        now = time.monotonic()
        if now - self._last_report < self.report_every_s:
            return
        self._last_report = now
        try:
            self.rx.report(self.summary())
        except ChannelError:
            pass

    def summary(self) -> Dict:
        c = self.clock.to_dict()
        return {
            "name": self.name,
            "tile": self.tid,
            "state": self.state,
            "start_at": self.start_at,
            "tuned_at": self.tuned_at,
            "retunes": self.retunes,
            "decoded": self.decoded,
            "displayed": self.displayed,
            "dropped_tuning": self.dropped_tuning,
            "dropped_gap": self.dropped_gap,
            "dropped_late": c["dropped_late"],
            "lag_s": max(0.0, c["last_lag_s"]),
            "max_lag_s": max(0.0, c["max_lag_s"]),
            "digest": self._digest.hexdigest(),
            **{k: v for k, v in self.rx.stats.to_dict().items()},
        }

    def close(self) -> None:
        self.rx.close()

    def __enter__(self) -> "WallReceiver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def receive_tile(
    control: Address,
    tid: int,
    name: Optional[str] = None,
    use_clock: bool = False,
    max_wall_s: float = 120.0,
    frames: Optional[List[Frame]] = None,
) -> Dict:
    """Convenience wrapper: run one tile receiver to completion."""
    on_frame = None
    if frames is not None:
        on_frame = lambda idx, f: frames.append(f)  # noqa: E731
    with WallReceiver(
        control, tid, name=name, use_clock=use_clock, on_frame=on_frame
    ) as wr:
        return wr.run(max_wall_s=max_wall_s)
