"""Tiled display-wall substrate: geometry, assembly, blending, presentation.

Geometry (:mod:`~repro.wall.layout`) and assembly (:mod:`~repro.wall.display`)
are the correctness core; :mod:`~repro.wall.config`,
:mod:`~repro.wall.clock`, :mod:`~repro.wall.broadcast`, and
:mod:`~repro.wall.receiver` form the presentation plane: one broadcast
stream in, N tune-in-capable tile receivers releasing frames on a shared
clock.
"""

from repro.wall.layout import TileLayout, Tile
from repro.wall.display import assemble_wall, edge_blend_weights
from repro.wall.config import TileCrop, WallSpec
from repro.wall.clock import PresentationClock

__all__ = [
    "TileLayout",
    "Tile",
    "assemble_wall",
    "edge_blend_weights",
    "TileCrop",
    "WallSpec",
    "PresentationClock",
]
