"""Tiled display-wall substrate: geometry, assembly, and edge blending."""

from repro.wall.layout import TileLayout, Tile
from repro.wall.display import assemble_wall, edge_blend_weights

__all__ = ["TileLayout", "Tile", "assemble_wall", "edge_blend_weights"]
