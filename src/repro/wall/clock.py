"""Presentation clock: release decoded frames on a shared wall timeline.

Every receiver of one broadcast derives the same frame-due times from the
broadcast epoch (shipped in the SUBSCRIBE handshake) and the stream frame
rate, so N projectors release frame k at the same wall-clock instant
without talking to each other — the decode plane is asynchronous, the
presentation plane is synchronous.

A frame that decodes before its due time is held (the clock sleeps); a
frame that decodes after ``due + late_tolerance_s`` is *dropped from
display* and accounted in the ledger.  Dropping happens strictly on the
presentation side: the decode plane has already produced (and digested)
the frame, so presentation drops never disturb bit-exactness checks —
the same rule edge blending follows.

``fps=None`` free-runs (every frame releases immediately, nothing is
late), which keeps deterministic tests independent of scheduler jitter.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional


class PresentationClock:
    """PTS-derived release gate for one receiver.

    ``epoch`` is the shared wall-clock origin (broadcast sender's clock);
    ``latency_s`` is the fixed decode/startup allowance added to every due
    time so the first frames are not born late.
    """

    def __init__(
        self,
        fps: Optional[float] = None,
        epoch: Optional[float] = None,
        latency_s: float = 0.25,
        late_tolerance_s: float = 0.0,
        time_fn: Callable[[], float] = time.time,
        sleep_fn: Callable[[float], None] = time.sleep,
    ):
        if fps is not None and fps <= 0:
            raise ValueError("fps must be positive")
        self.fps = fps
        self.time_fn = time_fn
        self.sleep_fn = sleep_fn
        self.epoch = time_fn() if epoch is None else epoch
        self.latency_s = latency_s
        self.late_tolerance_s = late_tolerance_s
        self.released = 0
        self.dropped_late = 0
        self.last_lag_s = 0.0
        self.max_lag_s = 0.0

    def due(self, display_index: int) -> float:
        """Wall-clock instant frame ``display_index`` should hit the glass."""
        if self.fps is None:
            return self.epoch
        return self.epoch + self.latency_s + display_index / self.fps

    def offer(self, display_index: int) -> bool:
        """Gate one decoded frame; True = release now, False = drop (late).

        Blocks until the frame's due time when it is early; records the
        lag (how far past due the frame arrived) either way.
        """
        if self.fps is None:
            self.released += 1
            return True
        now = self.time_fn()
        due = self.due(display_index)
        lag = now - due
        self.last_lag_s = lag
        if lag > self.max_lag_s:
            self.max_lag_s = lag
        if lag > self.late_tolerance_s:
            self.dropped_late += 1
            return False
        if lag < 0:
            self.sleep_fn(-lag)
        self.released += 1
        return True

    def to_dict(self) -> Dict[str, float]:
        return {
            "released": self.released,
            "dropped_late": self.dropped_late,
            "last_lag_s": round(self.last_lag_s, 6),
            "max_lag_s": round(self.max_lag_s, 6),
        }
