"""Tile geometry for an m x n projector wall.

The paper's wall (Princeton Scalable Display Wall) has a ~40-pixel overlap
between adjacent projectors for edge blending; macroblocks under an overlap
are sent to *every* tile that displays them, which is the duplication
overhead §5.1 notes for low-resolution streams.

Two rectangle families matter:

- ``tile.rect`` — what tile t *displays* (overlapping its neighbours).
  A macroblock is assigned to every tile whose rect it intersects.
- ``tile.partition`` — a non-overlapping ownership partition of the wall
  used for deterministic pixel assembly and for choosing which decoder
  *serves* a remote reference rectangle.
- ``tile.coverage`` — ``rect`` expanded outward to macroblock alignment;
  this is exactly the region tile t reconstructs, hence the region its
  stored reference frames are valid on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.mpeg2.constants import MB_SIZE
from repro.mpeg2.motion import Rect, mb_rect


@dataclass(frozen=True)
class Tile:
    """One projector/decoder tile."""

    tid: int
    col: int
    row: int
    rect: Rect  # displayed region (overlaps neighbours)
    partition: Rect  # exclusive ownership region
    coverage: Rect  # rect expanded to macroblock alignment


class TileLayout:
    """Geometry of an m x n tiled wall mapped onto a video raster.

    ``m`` is the number of tile columns, ``n`` the number of rows (the
    paper's 1-k-(m,n) notation).  ``overlap`` is the projector overlap in
    pixels along each interior edge.
    """

    def __init__(
        self,
        width: int,
        height: int,
        m: int,
        n: int,
        overlap: int = 0,
        x_bounds: list | None = None,
        y_bounds: list | None = None,
    ):
        if m < 1 or n < 1:
            raise ValueError("layout needs at least one tile")
        if width % MB_SIZE or height % MB_SIZE:
            raise ValueError("video raster must be macroblock aligned")
        if overlap < 0:
            raise ValueError("negative overlap")
        if m > 1 and overlap >= width // m:
            raise ValueError("overlap exceeds tile width")
        if n > 1 and overlap >= height // n:
            raise ValueError("overlap exceeds tile height")
        self.width = width
        self.height = height
        self.m = m
        self.n = n
        self.overlap = overlap

        # Non-overlapping partition boundaries, then expand interior edges
        # by half the overlap to obtain the displayed rects.  Custom bounds
        # (strictly increasing, spanning the raster) support the dynamic
        # load-balancing extension, which shifts partition lines toward
        # equal per-tile work.
        xs = x_bounds or [round(i * width / m) for i in range(m + 1)]
        ys = y_bounds or [round(j * height / n) for j in range(n + 1)]
        for bounds, count, end in ((xs, m, width), (ys, n, height)):
            if len(bounds) != count + 1 or bounds[0] != 0 or bounds[-1] != end:
                raise ValueError("boundary list must span the raster")
            if any(b1 <= b0 for b0, b1 in zip(bounds, bounds[1:])):
                raise ValueError("boundaries must be strictly increasing")
        self.x_bounds = list(xs)
        self.y_bounds = list(ys)
        half = overlap // 2
        self.tiles: List[Tile] = []
        for row in range(n):
            for col in range(m):
                part = Rect(xs[col], ys[row], xs[col + 1], ys[row + 1])
                rect = Rect(
                    part.x0 - (half if col > 0 else 0),
                    part.y0 - (half if row > 0 else 0),
                    part.x1 + (overlap - half if col < m - 1 else 0),
                    part.y1 + (overlap - half if row < n - 1 else 0),
                )
                cov = Rect(
                    (rect.x0 // MB_SIZE) * MB_SIZE,
                    (rect.y0 // MB_SIZE) * MB_SIZE,
                    -(-rect.x1 // MB_SIZE) * MB_SIZE,
                    -(-rect.y1 // MB_SIZE) * MB_SIZE,
                )
                self.tiles.append(
                    Tile(
                        tid=row * m + col,
                        col=col,
                        row=row,
                        rect=rect,
                        partition=part,
                        coverage=cov,
                    )
                )

    # ------------------------------------------------------------------ #

    @property
    def n_tiles(self) -> int:
        return self.m * self.n

    def __iter__(self) -> Iterator[Tile]:
        return iter(self.tiles)

    def tile(self, tid: int) -> Tile:
        return self.tiles[tid]

    def tiles_for_mb(self, mb_x: int, mb_y: int) -> List[int]:
        """Tiles that display macroblock (mb_x, mb_y) — possibly several
        under a projector overlap."""
        r = mb_rect(mb_x, mb_y)
        return [t.tid for t in self.tiles if not t.rect.intersect(r).is_empty()]

    def owner_of_mb(self, mb_x: int, mb_y: int) -> int:
        """The unique partition owner of a macroblock's top-left pixel."""
        x, y = mb_x * MB_SIZE, mb_y * MB_SIZE
        for t in self.tiles:
            p = t.partition
            if p.x0 <= x < p.x1 and p.y0 <= y < p.y1:
                return t.tid
        raise ValueError(f"macroblock ({mb_x},{mb_y}) outside the wall")

    def split_rect_by_partition(self, rect: Rect) -> List[tuple[int, Rect]]:
        """Intersect ``rect`` with every tile partition; drop empty pieces.

        The pieces tile ``rect`` exactly (partitions are a grid), which is
        what the MEI builder uses to source remote reference pixels.
        """
        out: List[tuple[int, Rect]] = []
        for t in self.tiles:
            piece = t.partition.intersect(rect)
            if not piece.is_empty():
                out.append((t.tid, piece))
        return out

    def duplication_factor(self) -> float:
        """Average number of tiles a macroblock is sent to (>= 1; above 1
        only when projector overlap duplicates work)."""
        mbw, mbh = self.width // MB_SIZE, self.height // MB_SIZE
        total = sum(
            len(self.tiles_for_mb(mx, my))
            for my in range(mbh)
            for mx in range(mbw)
        )
        return total / (mbw * mbh)

    def __repr__(self) -> str:
        return (
            f"TileLayout({self.width}x{self.height}, {self.m}x{self.n}, "
            f"overlap={self.overlap})"
        )
