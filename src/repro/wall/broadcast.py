"""Wall broadcast: publish one coded stream to N tile receivers.

The wall publisher sits on top of :mod:`repro.net.bcast` and defines the
application records of a wall broadcast:

- ``W_SEQ`` (sticky): the stream preamble — JSON metadata (raster, fps,
  picture count, wall spec, tune-in anchors, presentation epoch) plus the
  pickled :class:`~repro.mpeg2.structures.SequenceHeader`.  Sticky, so a
  late joiner receives it during the SUBSCRIBE handshake.
- ``W_PIC``: one coded picture — a fixed header (coded index, picture
  type, GOP flags, decode-closure margin, PTS) followed by the raw coded
  bytes, appended without copying.  The coded bytes are tile-independent,
  which is what makes the single-encode property possible: every receiver
  gets the same record and decodes only its own sub-rectangle.
- ``W_END`` (sticky): end of stream.

**Decode-closure margins.** A receiver wants to reconstruct only its tile
coverage, but motion compensation reads *outside* the target rectangle,
and those reads chain across the GOP (a B-picture predicts from a P that
predicted from an I...).  The publisher — which has the whole stream —
computes, per picture, how far outside any target rectangle a decoder
must reconstruct so that every transitive reference read stays inside
reconstructed pixels: a backward pass over each GOP in coded order where
``req[ref] = max(req[ref], req[pic] + bound(pic))`` and ``bound`` is the
conservative per-picture motion reach from its f_codes.  Receivers expand
their coverage rect by the shipped margin; the displayed partition crop
stays bit-exact while skipping most of the raster's reconstruction work
on large walls.

Tune-in anchors are closed-GOP I-pictures (plus picture 0): the only
points where a joining receiver can start with no prior reference state
and still be bit-identical to a clean decode from that point.
"""

from __future__ import annotations

import json
import pickle
import struct
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bitstream import BitReader
from repro.mpeg2.constants import MB_SIZE, PICTURE_START_CODE, PictureType
from repro.mpeg2.parser import PictureScanner, PictureUnit
from repro.mpeg2.structures import PictureHeader, SequenceHeader
from repro.net.bcast import ALL_TILES, BroadcastRecord, BroadcastSender
from repro.net.channel import Address
from repro.wall.config import WallSpec

# Wall record kinds (the `kind` byte of a broadcast record).
W_SEQ = 1
W_PIC = 2
W_END = 3

# W_PIC flags.
PIC_NEW_GOP = 0x01
PIC_CLOSED_GOP = 0x02
PIC_ANCHOR = 0x04

# W_PIC fixed header: coded_index u32, ptype u8, flags u8, margin u16, pts f64.
PIC_FMT = "<IBBHd"
PIC_HEADER_SIZE = struct.calcsize(PIC_FMT)


@dataclass(frozen=True)
class WallPicture:
    """One decoded W_PIC record."""

    coded_index: int
    ptype: PictureType
    flags: int
    margin_px: int
    pts: float
    data: bytes

    @property
    def anchor(self) -> bool:
        return bool(self.flags & PIC_ANCHOR)


def encode_pic_payload(
    coded_index: int,
    ptype: PictureType,
    flags: int,
    margin_px: int,
    pts: float,
    data: bytes,
) -> bytes:
    head = struct.pack(
        PIC_FMT, coded_index, int(ptype), flags, min(margin_px, 0xFFFF), pts
    )
    return head + data


def decode_pic_payload(payload: bytes) -> WallPicture:
    coded_index, ptype, flags, margin, pts = struct.unpack_from(PIC_FMT, payload)
    return WallPicture(
        coded_index=coded_index,
        ptype=PictureType(ptype),
        flags=flags,
        margin_px=margin,
        pts=pts,
        data=payload[PIC_HEADER_SIZE:],
    )


def encode_seq_payload(meta: Dict, sequence: SequenceHeader) -> bytes:
    blob = json.dumps(meta).encode("utf-8")
    return struct.pack("<I", len(blob)) + blob + pickle.dumps(sequence)


def decode_seq_payload(payload: bytes) -> Tuple[Dict, SequenceHeader]:
    (n,) = struct.unpack_from("<I", payload)
    meta = json.loads(payload[4 : 4 + n].decode("utf-8"))
    sequence = pickle.loads(payload[4 + n :])
    return meta, sequence


# --------------------------------------------------------------------- #
# stream analysis: anchors and decode-closure margins
# --------------------------------------------------------------------- #


def _parse_picture_header(data: bytes) -> PictureHeader:
    br = BitReader(data)
    if br.next_start_code() != PICTURE_START_CODE:
        raise ValueError("picture unit does not start with a picture start code")
    return PictureHeader.parse(br)


def tune_anchors(pictures: Sequence[PictureUnit]) -> List[int]:
    """Coded indices a joining receiver may start at with zero prior state.

    Closed-GOP I-pictures only: an open GOP's leading B-pictures predict
    from the previous GOP's last anchor, which a joiner never decoded.
    Picture 0 always qualifies — a decode from the top needs nothing.
    """
    out = []
    for i, unit in enumerate(pictures):
        if _parse_picture_header(unit.data).picture_type != PictureType.I:
            continue
        if i == 0:
            out.append(i)
        elif unit.new_gop and (unit.gop is None or unit.gop.closed_gop):
            out.append(i)
    return out


def _motion_bound_px(header: PictureHeader) -> int:
    """Conservative pixel reach of one picture's motion compensation.

    An f_code of f allows half-pel vector magnitudes up to ``16 << (f-1)``,
    i.e. ``1 << (f + 2)`` full pixels, plus one sample of half-pel
    interpolation support.  One extra macroblock of slack absorbs block
    geometry (the bound is per-vector; predictions start anywhere in the
    macroblock).  f = 15 marks an unused direction.
    """
    ptype = header.picture_type
    if ptype == PictureType.I:
        return 0
    codes = list(header.f_code[0])
    if ptype == PictureType.B:
        codes += list(header.f_code[1])
    used = [f for f in codes if 1 <= f < 15]
    if not used:
        return 0
    return (1 << (max(used) + 2)) + 1 + MB_SIZE


def decode_margins(pictures: Sequence[PictureUnit]) -> List[int]:
    """Per-picture reconstruction margin (pixels beyond the target rect).

    Backward closure over the reference DAG in coded order: references
    always precede their dependents in coded order, so one reversed pass
    propagates ``req[ref] = max(req[ref], req[pic] + bound(pic))``.  A
    picture's own margin is how far outside the display rect *it* must be
    reconstructed so every later picture's reads (transitively) land on
    reconstructed pixels.
    """
    headers = [_parse_picture_header(u.data) for u in pictures]
    refs: List[List[int]] = []
    prev_anchor: Optional[int] = None
    cur_anchor: Optional[int] = None
    for i, h in enumerate(headers):
        if h.picture_type == PictureType.I:
            refs.append([])
            prev_anchor, cur_anchor = cur_anchor, i
        elif h.picture_type == PictureType.P:
            refs.append([cur_anchor] if cur_anchor is not None else [])
            prev_anchor, cur_anchor = cur_anchor, i
        else:  # B: forward ref = previous anchor, backward ref = current
            r = [a for a in (prev_anchor, cur_anchor) if a is not None]
            refs.append(r)
    req = [0] * len(pictures)
    for i in reversed(range(len(pictures))):
        bound = _motion_bound_px(headers[i])
        for r in refs[i]:
            req[r] = max(req[r], req[i] + bound)
    return req


# --------------------------------------------------------------------- #
# publisher
# --------------------------------------------------------------------- #


class WallBroadcaster:
    """Scan a stream once and broadcast it to the wall.

    The broadcaster owns a :class:`BroadcastSender` and drives the wall
    record sequence: sticky ``W_SEQ``, every ``W_PIC`` (paced to the
    stream frame rate when ``rate_fps`` is set, free-running otherwise),
    sticky ``W_END``.  Its ``anchor_fn`` answers SUBSCRIBE handshakes with
    the next tune-in anchor strictly after the publish cursor, so a
    late/restarted receiver knows exactly where its bit-exact output
    resumes.
    """

    def __init__(
        self,
        stream: bytes,
        wall: WallSpec,
        control: Address,
        mode: str = "stream",
        fps: float = 30.0,
        name: str = "wall",
        repair_window: int = 512,
        group: Optional[str] = None,
        port: int = 0,
        loss_fn=None,
    ):
        self.wall = wall
        self.fps = fps
        self.sequence, self.pictures = PictureScanner(stream).scan()
        self.anchors = tune_anchors(self.pictures)
        if not self.anchors:
            raise ValueError("stream has no tune-in anchor (closed-GOP I-picture)")
        self.margins = decode_margins(self.pictures)
        self._cursor = -1  # last published coded index
        self._lock = threading.Lock()
        self.epoch = time.time()
        meta = {
            "name": name,
            "width": self.sequence.width,
            "height": self.sequence.height,
            "fps": fps,
            "n_pictures": len(self.pictures),
            "wall": wall.to_dict(),
            "anchors": self.anchors,
            "epoch": self.epoch,
        }
        sender_kw = {}
        if group is not None:
            sender_kw["group"] = group
        self.sender = BroadcastSender(
            control,
            mode=mode,
            meta=meta,
            anchor_fn=self.next_anchor,
            repair_window=repair_window,
            port=port,
            loss_fn=loss_fn,
            name=name,
        )
        self.control_address = self.sender.control_address
        self._published_seq = False
        self._ended = False

    def next_anchor(self) -> Optional[int]:
        """The tune-in point for a receiver subscribing right now."""
        with self._lock:
            cursor = self._cursor
        for a in self.anchors:
            if a > cursor:
                return a
        return None

    # ------------------------------ publishing ------------------------------ #

    def publish_sequence(self) -> None:
        if self._published_seq:
            return
        self._published_seq = True
        meta = dict(self.sender.meta)
        self.sender.publish(
            W_SEQ, encode_seq_payload(meta, self.sequence), sticky=True
        )

    def publish_picture(self, i: int) -> None:
        """Publish coded picture ``i`` — encoded exactly once, any N."""
        unit = self.pictures[i]
        flags = 0
        if unit.new_gop:
            flags |= PIC_NEW_GOP
        if unit.gop is not None and unit.gop.closed_gop:
            flags |= PIC_CLOSED_GOP
        if i in self.anchors:
            flags |= PIC_ANCHOR
        ptype = _parse_picture_header(unit.data).picture_type
        payload = encode_pic_payload(
            i, ptype, flags, self.margins[i], i / self.fps, unit.data
        )
        self.sender.publish(W_PIC, payload, picture=i, tiles=ALL_TILES)
        with self._lock:
            self._cursor = i

    def publish_end(self) -> None:
        if self._ended:
            return
        self._ended = True
        self.sender.publish(
            W_END,
            json.dumps({"n_pictures": len(self.pictures)}).encode("utf-8"),
            sticky=True,
        )

    def run(
        self,
        rate_fps: Optional[float] = None,
        stop: Optional[threading.Event] = None,
    ) -> Dict:
        """Publish the whole stream; returns the sender's stats dict."""
        self.publish_sequence()
        t0 = time.monotonic()
        for i in range(len(self.pictures)):
            if stop is not None and stop.is_set():
                break
            if rate_fps:
                gate = t0 + i / rate_fps
                delay = gate - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
            self.publish_picture(i)
        self.publish_end()
        return self.stats()

    # ------------------------------ inspection ------------------------------ #

    def stats(self) -> Dict:
        s = self.sender.stats.to_dict()
        s["subscribers"] = self.sender.subscriber_count
        s["cursor"] = self._cursor
        s["n_pictures"] = len(self.pictures)
        s["anchors"] = len(self.anchors)
        return s

    def receiver_reports(self) -> List[Dict]:
        return self.sender.receiver_reports()

    def close(self) -> None:
        self.sender.close()


def wall_record_picture(rec: BroadcastRecord) -> WallPicture:
    """Decode a W_PIC broadcast record's payload."""
    if rec.kind != W_PIC:
        raise ValueError(f"record kind {rec.kind} is not W_PIC")
    return decode_pic_payload(rec.payload)
