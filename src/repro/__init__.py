"""repro — a parallel ultra-high-resolution MPEG-2 decoder for PC-cluster
tiled display walls (reproduction of Chen, Li & Wei, IPDPS 2002).

Top-level convenience exports cover the quickstart path; the subpackages
hold the full system:

- :mod:`repro.mpeg2` — the from-scratch MPEG-2 codec substrate;
- :mod:`repro.parallel` — the hierarchical 1-k-(m,n) decoder (the paper's
  contribution), its baselines, and its extensions;
- :mod:`repro.wall` — tiled display-wall geometry and assembly;
- :mod:`repro.net` / :mod:`repro.cluster` — the DES cluster substrate;
- :mod:`repro.perf` — calibrated cost model and experiment runners;
- :mod:`repro.workloads` — synthetic content and the Table 4 streams.

Run ``python -m repro --help`` for the command-line tools.
"""

__version__ = "1.0.0"

from repro.mpeg2 import Decoder, Encoder, EncoderConfig, decode_stream, psnr
from repro.parallel import ParallelDecoder
from repro.wall import TileLayout

__all__ = [
    "__version__",
    "Decoder",
    "Encoder",
    "EncoderConfig",
    "decode_stream",
    "psnr",
    "ParallelDecoder",
    "TileLayout",
]
