"""Performance layer: cost model, DES experiment runners, metrics, and
the cluster telemetry stack (registry, trace spans, timeline export)."""

from repro.perf.costmodel import CostModel, PictureWork, build_picture_work
from repro.perf.metrics import RuntimeBreakdown
from repro.perf.telemetry import MetricsRegistry, registry

__all__ = [
    "CostModel",
    "PictureWork",
    "build_picture_work",
    "RuntimeBreakdown",
    "MetricsRegistry",
    "registry",
]
