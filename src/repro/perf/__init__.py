"""Performance layer: cost model, DES experiment runners, and metrics."""

from repro.perf.costmodel import CostModel, PictureWork, build_picture_work
from repro.perf.metrics import RuntimeBreakdown

__all__ = ["CostModel", "PictureWork", "build_picture_work", "RuntimeBreakdown"]
