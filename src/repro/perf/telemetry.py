"""Process-local metrics registry and span helpers for the trace stream.

Two observability primitives live here:

- a lightweight **metrics registry** — :class:`Counter`, :class:`Gauge`
  and fixed-bucket :class:`Histogram` (p50/p95/p99) keyed by name — whose
  JSON-safe snapshots are emitted into the per-process trace stream as
  periodic ``stats`` events (:func:`maybe_emit_stats`), alongside the live
  per-channel byte/frame/blocked-time counters of every registered
  :class:`~repro.net.channel.Channel`;
- **stage-span emission** helpers that keep the span timeline and the
  :class:`~repro.perf.metrics.StageTimes` accounting in exact agreement:
  :func:`traced_stage` measures a contiguous stage region once and feeds
  both, and :func:`stage_span_block` lays synthesized parse/plan/execute
  child spans (from stage-delta attribution) inside a real parent span,
  so interleaved per-record work still renders as a clean timeline.

Everything here is stdlib-only, so low-level modules (the socket
transport) may import it without dragging in the decoder stack.
"""

from __future__ import annotations

import threading
import time
import weakref
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

# --------------------------------------------------------------------- #
# metrics primitives
# --------------------------------------------------------------------- #


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value (queue depth, credits available, ...)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, v: float) -> None:
        self._value = v

    @property
    def value(self) -> float:
        return self._value


#: Default histogram bounds: geometric in seconds, 10 µs .. 10 s — wide
#: enough for both codec calls and barrier waits.
DEFAULT_BOUNDS: Tuple[float, ...] = tuple(
    1e-5 * (10 ** (i / 3)) for i in range(19)
)


class Histogram:
    """Fixed-bucket histogram with interpolated percentile estimates.

    Buckets are ``(-inf, b0], (b0, b1], ..., (bn, +inf)``.  Percentiles
    interpolate linearly inside the bucket that crosses the target rank;
    the open-ended tails clamp to the observed min/max, so estimates never
    leave the observed range.

    The last bucket is the explicit **overflow** bucket: values past the
    final edge land there, and percentile math interpolates between the
    smallest overflowing value and the observed max instead of pretending
    the bucket starts at the last edge — without that, one giant outlier
    dragged every quantile that crosses into the overflow bucket down
    toward the last bound.  :meth:`buckets` exposes the cumulative
    Prometheus view, overflow included under the ``+Inf`` edge.
    """

    __slots__ = (
        "_lock", "bounds", "counts", "count", "sum", "min", "max",
        "overflow_min",
    )

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted and non-empty")
        self._lock = threading.Lock()
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.overflow_min = float("inf")

    def observe(self, v: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.bounds, v)] += 1
            self.count += 1
            self.sum += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v
            if v > self.bounds[-1] and v < self.overflow_min:
                self.overflow_min = v

    @property
    def overflow(self) -> int:
        """How many observations landed beyond the last bucket edge."""
        return self.counts[-1]

    def percentile(self, p: float) -> float:
        """Estimated value at percentile ``p`` (0..100)."""
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= rank:
                if i < len(self.bounds):
                    lo = self.bounds[i - 1] if i > 0 else self.min
                    hi = self.bounds[i]
                else:
                    # the +Inf bucket: interpolate over what actually
                    # landed there, not from the last finite edge
                    lo = self.overflow_min
                    hi = self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return lo
                frac = (rank - seen) / c
                return lo + frac * (hi - lo)
            seen += c
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_edge, count_le)`` pairs, Prometheus-style.

        The final pair's edge is ``+Inf`` and its count equals ``count``,
        so the overflow bucket is visible to any downstream quantile math
        instead of being silently folded away.
        """
        out: List[Tuple[float, int]] = []
        cum = 0
        with self._lock:
            for edge, c in zip(self.bounds, self.counts):
                cum += c
                out.append((edge, cum))
            out.append((float("inf"), self.count))
        return out

    def to_dict(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        d = {
            "count": self.count,
            "sum": round(self.sum, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
            "mean": round(self.mean, 6),
            "p50": round(self.percentile(50), 6),
            "p95": round(self.percentile(95), 6),
            "p99": round(self.percentile(99), 6),
        }
        if self.counts[-1]:
            d["overflow"] = self.counts[-1]
        return d


class MetricsRegistry:
    """Create-or-get store of named metrics, snapshotted as one dict."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(bounds)
            return h

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-safe dump of every metric (for ``stats`` trace events)."""
        with self._lock:
            return {
                "counters": {
                    k: round(c.value, 6) for k, c in self._counters.items()
                },
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: h.to_dict() for k, h in self._histograms.items()
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def prune(self, prefix: str) -> int:
        """Drop every metric whose name starts with ``prefix``.

        Long-lived daemons mint per-session metric names; pruning a
        retired session's prefix keeps the registry (and every ``stats``
        snapshot shipped into the trace stream) from growing without
        bound.  Returns how many metrics were removed.
        """
        removed = 0
        with self._lock:
            for store in (self._counters, self._gauges, self._histograms):
                doomed = [k for k in store if k.startswith(prefix)]
                removed += len(doomed)
                for k in doomed:
                    del store[k]
        return removed


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global default registry (one per worker process)."""
    return _REGISTRY


# --------------------------------------------------------------------- #
# live channel accounting
# --------------------------------------------------------------------- #

#: Every named Channel registers itself here (weakly); stats snapshots
#: read the live byte/frame counters without the transport having to know
#: about tracers.
_CHANNELS: "weakref.WeakSet" = weakref.WeakSet()

#: Rolled-up stats of channels that have closed, keyed by channel name.
#: Without this, a closed channel's counters vanish whenever the GC runs
#: (the registry is weak), so the final wire totals undercounted every
#: connection that didn't survive to the last snapshot.
_CLOSED: Dict[str, Dict[str, float]] = {}
_CLOSED_LOCK = threading.Lock()


def register_channel(ch) -> None:
    _CHANNELS.add(ch)


def retire_channel(ch) -> None:
    """Fold a closing channel's counters into the closed-channel rollup.

    Idempotent per channel object: ``Channel.close()`` may run more than
    once (explicit close + ``__del__``), but the stats are harvested only
    the first time.  Same-name reincarnations (close/reopen of a peer
    link) accumulate, so ``channel_snapshot`` reports cumulative totals
    across the connection's whole history.
    """
    if getattr(ch, "_stats_retired", False):
        return
    try:
        ch._stats_retired = True
    except AttributeError:
        pass
    name = getattr(ch, "name", "")
    if not name:
        return
    stats = ch.stats.to_dict()
    with _CLOSED_LOCK:
        acc = _CLOSED.setdefault(name, {})
        for k, v in stats.items():
            acc[k] = acc.get(k, 0) + v
    _CHANNELS.discard(ch)


def reset_closed_channels() -> None:
    """Drop the closed-channel rollup (test isolation)."""
    with _CLOSED_LOCK:
        _CLOSED.clear()


def channel_snapshot() -> Dict[str, Dict[str, float]]:
    """``{channel name: stats}`` for every named channel.

    Live channels report their current counters; channels that closed
    contribute their final counters from the rollup, and a name that has
    lived more than once (close/reopen) reports the sum of all its
    incarnations plus whatever the current one has moved so far.
    """
    out: Dict[str, Dict[str, float]] = {}
    with _CLOSED_LOCK:
        for name, acc in _CLOSED.items():
            out[name] = dict(acc)
    for ch in list(_CHANNELS):
        name = getattr(ch, "name", "")
        if not name or getattr(ch, "_stats_retired", False):
            continue
        stats = ch.stats.to_dict()
        if name in out:
            acc = out[name]
            for k, v in stats.items():
                acc[k] = acc.get(k, 0) + v
        else:
            out[name] = stats
    return out


# --------------------------------------------------------------------- #
# stats emission into the trace stream
# --------------------------------------------------------------------- #


def emit_stats(tracer) -> None:
    """Write one ``stats`` snapshot event (metrics + channels) now."""
    tracer.emit(
        "stats", metrics=registry().snapshot(), channels=channel_snapshot()
    )


def maybe_emit_stats(tracer, interval: float = 1.0) -> bool:
    """Rate-limited :func:`emit_stats`: at most one per ``interval``
    seconds per tracer.  No-op when the tracer has spans disabled."""
    if not getattr(tracer, "spans", True):
        return False
    now = time.monotonic()
    last = getattr(tracer, "_last_stats", None)
    if last is not None and now - last < interval:
        return False
    tracer._last_stats = now
    emit_stats(tracer)
    return True


# --------------------------------------------------------------------- #
# stage spans: keep the timeline and StageTimes in exact agreement
# --------------------------------------------------------------------- #


@contextmanager
def traced_stage(
    tracer, stage_times, name: str, picture: int = -1
) -> Iterator[None]:
    """Time one contiguous stage region ONCE; feed the duration to both
    ``stage_times`` and (as a span) the trace stream, so the span total
    and the ``stage_times`` attribution are identical by construction."""
    if name not in stage_times.STAGES:
        raise KeyError(name)
    wall0 = time.time()
    t0 = time.perf_counter()
    try:
        yield
    finally:
        dt = time.perf_counter() - t0
        setattr(stage_times, name, getattr(stage_times, name) + dt)
        if tracer is not None and getattr(tracer, "spans", True):
            tracer.emit(name, picture=picture, ts=wall0, ph="B")
            tracer.emit(
                name, picture=picture, ts=wall0 + dt, ph="E",
                dur_s=round(dt, 9),
            )


@contextmanager
def stage_span_block(
    tracer,
    stage_times,
    parent: str,
    picture: int = -1,
    stages: Optional[Sequence[str]] = None,
) -> Iterator[None]:
    """Emit a real ``parent`` span around the block, then lay synthesized
    child spans — one per stage that accrued time inside the block — back
    to back from the parent's start.

    The child durations come from the ``stage_times`` deltas across the
    block, so per-stage totals computed from spans match
    :func:`repro.perf.trace.load_stage_times` exactly even when the block
    interleaves stages per record (the batched bitstream decode path).
    """
    names = tuple(stages if stages is not None else stage_times.STAGES)
    enabled = tracer is not None and getattr(tracer, "spans", True)
    before = {s: getattr(stage_times, s) for s in names}
    wall0 = time.time()
    t0 = time.perf_counter()
    if enabled:
        tracer.emit(parent, picture=picture, ts=wall0, ph="B")
    try:
        yield
    finally:
        dur = time.perf_counter() - t0
        if enabled:
            cur = wall0
            for s in names:
                dt = getattr(stage_times, s) - before[s]
                if dt <= 0:
                    continue
                tracer.emit(s, picture=picture, ts=cur, ph="B")
                cur += dt
                tracer.emit(
                    s, picture=picture, ts=cur, ph="E", dur_s=round(dt, 9)
                )
            tracer.emit(
                parent, picture=picture, ts=wall0 + dur, ph="E",
                dur_s=round(dur, 9),
            )


__all__: List[str] = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BOUNDS",
    "registry",
    "register_channel",
    "retire_channel",
    "reset_closed_channels",
    "channel_snapshot",
    "emit_stats",
    "maybe_emit_stats",
    "traced_stage",
    "stage_span_block",
]
