"""Timeline export and post-mortem reporting for cluster trace streams.

Two consumers of the merged :class:`~repro.perf.trace.TraceEvent` stream:

- :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON (Perfetto-loadable, ``chrome://tracing`` compatible):
  one *process* track per cluster process, one *thread* track per traced
  thread inside it, ``B``/``E`` span pairs for every instrumented region,
  instant marks for the remaining events, and counter tracks for the
  per-channel wire-byte snapshots;
- :func:`build_report` / :func:`render_report` — the ``repro
  trace-report`` text post-mortem: per-stage attribution per process,
  per-picture latency percentiles, barrier-wait and credit-stall totals
  per tile, cross-tile imbalance, and bytes-on-wire per channel.

Per-stage totals are computed from span durations; because the runtime
emits stage spans from the very same measurements that feed
:class:`~repro.perf.metrics.StageTimes`, the report's attribution agrees
with :func:`~repro.perf.trace.load_stage_times` by construction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.perf.metrics import StageTimes
from repro.perf.trace import TraceEvent

#: Span events whose totals are "useful work" on a decoder track; used
#: for the cross-tile imbalance figure (waits deliberately excluded).
DECODER_BUSY = ("decode", "serve", "wire")

#: Wait-side spans: the flow-control/barrier attribution.
WAIT_EVENTS = ("exchange_wait", "credit_wait", "ack_wait")


def _proc_rank(proc: str) -> Tuple[int, str]:
    """Stable track order: root, splitters, decoders, then the rest."""
    for i, prefix in enumerate(("root", "split", "dec", "supervisor")):
        if proc.startswith(prefix):
            return (i, proc)
    return (4, proc)


# --------------------------------------------------------------------- #
# Chrome trace / Perfetto JSON
# --------------------------------------------------------------------- #


def to_chrome_trace(events: Sequence[TraceEvent]) -> Dict:
    """Convert a merged timeline into a Chrome trace-event JSON object.

    Timestamps are rebased to the earliest event and expressed in
    microseconds, the native unit of the format.
    """
    procs = sorted({ev.proc for ev in events}, key=_proc_rank)
    pid_of = {p: i + 1 for i, p in enumerate(procs)}
    tid_of: Dict[Tuple[str, str], int] = {}
    base = min((ev.ts for ev in events), default=0.0)

    out: List[Dict] = []
    for proc in procs:
        out.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid_of[proc],
                "args": {"name": proc},
            }
        )

    def tid(proc: str, thread: str) -> int:
        key = (proc, thread)
        if key not in tid_of:
            n = sum(1 for (p, _t) in tid_of if p == proc)
            tid_of[key] = n
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid_of[proc],
                    "tid": n,
                    "args": {"name": thread or "main"},
                }
            )
        return tid_of[key]

    for ev in events:
        data = ev.data
        ph = data.get("ph")
        common = {
            "name": ev.event,
            "pid": pid_of[ev.proc],
            "tid": tid(ev.proc, data.get("tid", "")),
            "ts": (ev.ts - base) * 1e6,
        }
        args = {
            k: v
            for k, v in data.items()
            if k not in ("ph", "tid", "dur_s")
        }
        if ev.picture >= 0:
            args["picture"] = ev.picture
        if ph in ("B", "E"):
            out.append({**common, "ph": ph, "cat": "span", "args": args})
        elif ev.event == "stats":
            # channel byte counters render as Perfetto counter tracks
            for chan, st in data.get("channels", {}).items():
                out.append(
                    {
                        "ph": "C",
                        "name": f"wire:{chan}",
                        "pid": common["pid"],
                        "tid": 0,
                        "ts": common["ts"],
                        "args": {
                            "sent_bytes": st.get("sent_bytes", 0),
                            "recv_bytes": st.get("recv_bytes", 0),
                        },
                    }
                )
        else:
            out.append(
                {**common, "ph": "i", "s": "t", "cat": "event", "args": args}
            )
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(
    events: Sequence[TraceEvent], path: Union[str, Path]
) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(events)) + "\n")
    return path


# --------------------------------------------------------------------- #
# text report
# --------------------------------------------------------------------- #


def _pct(sorted_vals: List[float], p: float) -> float:
    """Exact percentile (linear interpolation) of a pre-sorted list."""
    if not sorted_vals:
        return 0.0
    if len(sorted_vals) == 1:
        return sorted_vals[0]
    rank = p / 100.0 * (len(sorted_vals) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_vals) - 1)
    return sorted_vals[lo] + (rank - lo) * (sorted_vals[hi] - sorted_vals[lo])


@dataclass
class ProcSummary:
    """Everything the report knows about one process's track."""

    span_totals: Dict[str, float] = field(default_factory=dict)
    span_counts: Dict[str, int] = field(default_factory=dict)
    picture_spans: List[float] = field(default_factory=list)  # decode/split
    open_spans: List[str] = field(default_factory=list)  # B without E
    channels: Dict[str, Dict] = field(default_factory=dict)
    credit: Dict[str, Dict] = field(default_factory=dict)
    stage_times: StageTimes = field(default_factory=StageTimes)
    # latest registry counter/gauge snapshot (pool.* lives here)
    metrics: Dict[str, float] = field(default_factory=dict)
    # final per-pool accounting from the worker's pool_stats event
    pools: Dict[str, Dict] = field(default_factory=dict)
    # decoder-only: per-picture decode+serve seconds (decode order), the
    # input to the per-GOP imbalance windows
    picture_busy: Dict[int, float] = field(default_factory=dict)


@dataclass
class SessionAgg:
    """Per-session attribution from a wall-service trace stream."""

    summary: Optional[Dict] = None  # the session_summary payload
    proc: str = ""  # the daemon whose trace carried this session
    decode_s: float = 0.0  # total decode span time billed to this sid
    decode_count: int = 0
    drop_events: int = 0  # instant "drop" events seen in the stream
    drops_by_type: Dict[str, int] = field(default_factory=dict)
    forced_drop_events: int = 0

    def consistent(self) -> bool:
        """Do streamed drop events agree with the summary's counters?"""
        if self.summary is None:
            return False
        counted = self.summary.get("dropped_b", 0) + self.summary.get(
            "dropped_p", 0
        )
        return counted == self.drop_events


@dataclass
class TraceReport:
    """Aggregated post-mortem of one cluster run."""

    procs: Dict[str, ProcSummary]
    wall_s: float
    n_events: int
    sessions: Dict[int, SessionAgg] = field(default_factory=dict)
    admission_rejects: List[Dict] = field(default_factory=list)
    failovers: List[Dict] = field(default_factory=list)  # gateway events
    # adaptive repartitioning: the root's versioned layout_update events,
    # the decoders' repartition (applied) events, and the GOP boundaries
    partition_updates: List[Dict] = field(default_factory=list)
    repartitions: List[Dict] = field(default_factory=list)
    gops: List[Dict] = field(default_factory=list)
    # end-to-end picture latency: the collector's per-picture ``e2e``
    # events (root ingress -> wall paste, with per-hop attribution)
    e2e: List[Dict] = field(default_factory=list)
    # SLO burn-rate alerts emitted by wall-service sessions
    slo_burns: List[Dict] = field(default_factory=list)

    # -- derived views ------------------------------------------------- #

    def stage_totals(self, proc: str) -> Dict[str, float]:
        """parse/plan/execute/wire span totals for one process."""
        s = self.procs[proc].span_totals
        return {st: s.get(st, 0.0) for st in StageTimes.STAGES}

    def decoder_procs(self) -> List[str]:
        return sorted(
            (p for p in self.procs if p.startswith("dec")), key=_proc_rank
        )

    def imbalance(self) -> Dict[str, float]:
        """Cross-tile busy-time spread — the paper's §5.4 load balance."""
        busy = {
            p: sum(self.procs[p].span_totals.get(e, 0.0) for e in DECODER_BUSY)
            for p in self.decoder_procs()
        }
        if not busy:
            return {}
        vals = list(busy.values())
        mean = sum(vals) / len(vals)
        return {
            "min_s": min(vals),
            "max_s": max(vals),
            "mean_s": mean,
            "spread_s": max(vals) - min(vals),
            "max_over_mean": max(vals) / mean if mean > 0 else 0.0,
        }

    def pool_rollup(self) -> Dict[str, float]:
        """Cluster-wide shared-memory pool accounting.

        ``copies_avoided`` counts the frames whose payload crossed a
        process boundary as a pool handle instead of a socket copy;
        ``by_handle_bytes`` is the payload volume those handles carried.
        """
        keys = {
            "by_handle_bytes": "pool.bytes_by_handle",
            "by_copy_bytes": "pool.bytes_by_copy",
            "leases": "pool.leases",
            "releases": "pool.releases",
            "exhausted": "pool.exhausted",
        }
        roll = {
            out: sum(ps.metrics.get(m, 0.0) for ps in self.procs.values())
            for out, m in keys.items()
        }
        roll["copies_avoided"] = roll["leases"]
        return roll

    def daemon_rollup(self) -> Dict[str, Dict[str, float]]:
        """Per-daemon session attribution for fleet runs.

        Groups every session by the process whose trace stream carried it
        (each fleet daemon writes with a distinct ``trace_name``), so a
        merged fleet trace answers "which daemon did the work" directly.
        """
        roll: Dict[str, Dict[str, float]] = {}
        for agg in self.sessions.values():
            if not agg.proc:
                continue
            r = roll.setdefault(
                agg.proc,
                {"sessions": 0, "completed": 0, "decode_s": 0.0,
                 "drops": 0, "forced": 0},
            )
            r["sessions"] += 1
            s = agg.summary or {}
            if s.get("state") == "completed":
                r["completed"] += 1
            r["decode_s"] += agg.decode_s
            r["drops"] += agg.drop_events
            r["forced"] += agg.forced_drop_events
        return roll

    def gop_imbalance(self) -> List[Dict[str, float]]:
        """Cross-tile imbalance per GOP window (busy = decode+serve).

        Busy is the decoder's thread-CPU time where the trace recorded it
        (``cpu_s`` on the decode event), falling back to wall spans for
        older traces — CPU time keeps the figure meaningful even when the
        whole fleet time-slices a single core.

        Windows come from the root's ``gop`` events; pictures are binned
        in decode order.  This is how the adaptive partition's effect
        shows up: under a working policy the ``max_over_mean`` of late
        GOPs drops toward 1.0 while the first GOP (decoded under the
        static base layout) stays imbalanced.
        """
        starts = sorted({g["picture"] for g in self.gops})
        decs = self.decoder_procs()
        if not starts or not decs:
            return []
        n_pics = max(
            (max(self.procs[p].picture_busy, default=-1) for p in decs),
            default=-1,
        ) + 1
        out = []
        for w, start in enumerate(starts):
            end = starts[w + 1] if w + 1 < len(starts) else n_pics
            busy = [
                sum(
                    self.procs[p].picture_busy.get(i, 0.0)
                    for i in range(start, end)
                )
                for p in decs
            ]
            mean = sum(busy) / len(busy)
            out.append(
                {
                    "start": start,
                    "end": end,
                    "max_s": max(busy),
                    "mean_s": mean,
                    "max_over_mean": max(busy) / mean if mean > 0 else 0.0,
                }
            )
        return out

    def e2e_stats(self) -> Dict[str, object]:
        """Percentiles and critical-path attribution of the end-to-end
        picture latency.  The per-hop totals are telescoping (the stamps
        partition ``[t_root, t_paste]``), so ``split + decode + collect``
        equals ``sum_s`` exactly — the agreement invariant the obs tests
        assert."""
        vals = sorted(float(e["e2e_s"]) for e in self.e2e)
        hops = {"split": 0.0, "decode": 0.0, "collect": 0.0}
        critical: Dict[str, int] = {}
        for e in self.e2e:
            for h in hops:
                hops[h] += float(e.get(f"{h}_s", 0.0))
            c = e.get("critical")
            if c:
                critical[c] = critical.get(c, 0) + 1
        return {
            "count": len(vals),
            "p50_ms": 1e3 * _pct(vals, 50),
            "p95_ms": 1e3 * _pct(vals, 95),
            "p99_ms": 1e3 * _pct(vals, 99),
            "max_ms": 1e3 * (vals[-1] if vals else 0.0),
            "sum_s": sum(vals),
            "hops_s": hops,
            "critical": critical,
        }

    def picture_percentiles(self, proc: str) -> Dict[str, float]:
        vals = sorted(self.procs[proc].picture_spans)
        return {
            "count": len(vals),
            "p50_ms": 1e3 * _pct(vals, 50),
            "p95_ms": 1e3 * _pct(vals, 95),
            "p99_ms": 1e3 * _pct(vals, 99),
            "max_ms": 1e3 * (vals[-1] if vals else 0.0),
        }


def build_report(events: Sequence[TraceEvent]) -> TraceReport:
    """Fold a merged timeline into the aggregates the text report shows."""
    procs: Dict[str, ProcSummary] = {}
    open_begins: Dict[Tuple[str, str, str, int], int] = {}
    open_sids: Dict[Tuple[str, str, str, int], List[int]] = {}
    sessions: Dict[int, SessionAgg] = {}
    rejects: List[Dict] = []
    failovers: List[Dict] = []
    partition_updates: List[Dict] = []
    repartitions: List[Dict] = []
    gops: List[Dict] = []
    e2e: List[Dict] = []
    slo_burns: List[Dict] = []
    t_lo, t_hi = float("inf"), float("-inf")

    def session(sid) -> SessionAgg:
        return sessions.setdefault(int(sid), SessionAgg())

    for ev in events:
        ps = procs.setdefault(ev.proc, ProcSummary())
        t_lo, t_hi = min(t_lo, ev.ts), max(t_hi, ev.ts)
        ph = ev.data.get("ph")
        key = (ev.proc, ev.data.get("tid", ""), ev.event, ev.picture)
        if ph == "B":
            open_begins[key] = open_begins.get(key, 0) + 1
            if "sid" in ev.data:
                # E spans carry no data; remember which sid this B opened
                open_sids.setdefault(key, []).append(int(ev.data["sid"]))
        elif ph == "E":
            if open_begins.get(key, 0) > 0:
                open_begins[key] -= 1
            dur = float(ev.data.get("dur_s", 0.0))
            ps.span_totals[ev.event] = ps.span_totals.get(ev.event, 0.0) + dur
            ps.span_counts[ev.event] = ps.span_counts.get(ev.event, 0) + 1
            if (ev.proc.startswith("dec") and ev.event == "decode") or (
                ev.proc.startswith("split") and ev.event == "split"
            ):
                ps.picture_spans.append(dur)
            if (
                ev.proc.startswith("dec")
                and ev.event in ("decode", "serve")
                and ev.picture >= 0
            ):
                ps.picture_busy[ev.picture] = (
                    ps.picture_busy.get(ev.picture, 0.0) + dur
                )
            sids = open_sids.get(key)
            if sids:
                agg = session(sids.pop())
                agg.decode_s += dur
                agg.decode_count += 1
                agg.proc = agg.proc or ev.proc
        elif (
            ev.proc.startswith("dec")
            and ev.event == "decode"
            and "cpu_s" in ev.data
            and ev.picture >= 0
        ):
            # The decoder's summary event carries thread-CPU busy time,
            # which excludes scheduler preemption.  It lands after the
            # wall-clock serve/decode spans of the same picture, so it
            # overrides their sum wherever both were recorded.
            ps.picture_busy[ev.picture] = float(ev.data["cpu_s"])
        elif ev.event == "drop" and "sid" in ev.data:
            agg = session(ev.data["sid"])
            agg.drop_events += 1
            agg.proc = agg.proc or ev.proc
            ptype = ev.data.get("ptype", "?")
            agg.drops_by_type[ptype] = agg.drops_by_type.get(ptype, 0) + 1
            if ev.data.get("forced"):
                agg.forced_drop_events += 1
        elif ev.event == "session_summary" and "sid" in ev.data:
            agg = session(ev.data["sid"])
            agg.summary = dict(ev.data)
            agg.proc = ev.proc  # the summary's stream is authoritative
        elif ev.event == "failover":
            failovers.append(dict(ev.data))
        elif ev.event == "layout_update":
            partition_updates.append({"picture": ev.picture, **ev.data})
        elif ev.event == "repartition":
            repartitions.append(
                {"proc": ev.proc, "picture": ev.picture, **ev.data}
            )
        elif ev.event == "gop":
            gops.append({"picture": ev.picture, **ev.data})
        elif ev.event == "e2e":
            e2e.append({"picture": ev.picture, **ev.data})
        elif ev.event == "slo_burn":
            slo_burns.append({"proc": ev.proc, "picture": ev.picture, **ev.data})
            if "sid" in ev.data:
                session(ev.data["sid"]).proc = (
                    session(ev.data["sid"]).proc or ev.proc
                )
        elif ev.event == "admission_reject":
            rejects.append(dict(ev.data))
        elif ev.event == "stats":
            # later snapshots supersede earlier ones (counters are totals)
            ps.channels.update(ev.data.get("channels", {}))
            metrics = ev.data.get("metrics", {})
            ps.metrics.update(metrics.get("counters", {}))
            ps.metrics.update(metrics.get("gauges", {}))
        elif ev.event == "pool_stats":
            ps.pools[ev.data.get("pool", "?")] = {
                k: v for k, v in ev.data.items() if k != "pool"
            }
        elif ev.event == "credit_totals":
            ps.credit = {
                k: v for k, v in ev.data.items() if isinstance(v, dict)
            }
        elif ev.event == "stage_times":
            clean = {
                k: v for k, v in ev.data.items() if k != "tid"
            }
            ps.stage_times.merge(StageTimes.from_dict(clean))

    for (proc, _tid, event, _pic), n in open_begins.items():
        if n > 0:
            procs[proc].open_spans.extend([event] * n)

    wall = (t_hi - t_lo) if t_hi >= t_lo else 0.0
    return TraceReport(
        procs=procs,
        wall_s=wall,
        n_events=len(events),
        sessions=sessions,
        admission_rejects=rejects,
        failovers=failovers,
        partition_updates=partition_updates,
        repartitions=repartitions,
        gops=gops,
        e2e=e2e,
        slo_burns=slo_burns,
    )


def _fmt_row(cols: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(str(c).ljust(w) for c, w in zip(cols, widths)).rstrip()


def _table(header: Sequence[str], rows: List[Sequence[str]]) -> List[str]:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    lines = [_fmt_row(header, widths), _fmt_row(["-" * w for w in widths], widths)]
    lines += [_fmt_row(r, widths) for r in rows]
    return lines


def render_report(report: TraceReport) -> str:
    """The ``repro trace-report`` text body."""
    L: List[str] = []
    L.append(
        f"trace report: {report.n_events} events, "
        f"{len(report.procs)} processes, {report.wall_s:.3f}s wall"
    )
    L.append("")

    # ---- per-stage attribution ---------------------------------------- #
    L.append("Per-stage attribution (seconds of span time per process):")
    stage_names = list(StageTimes.STAGES) + [
        "split", "decode", "serve", "exchange_wait", "credit_wait", "ack_wait"
    ]
    rows = []
    for proc in sorted(report.procs, key=_proc_rank):
        tot = report.procs[proc].span_totals
        if not tot:
            continue
        rows.append(
            [proc] + [f"{tot.get(s, 0.0):.3f}" for s in stage_names]
        )
    if rows:
        L += _table(["proc"] + stage_names, rows)
    else:
        L.append("  (no spans recorded — telemetry disabled?)")
    L.append("")

    # ---- per-picture latency ------------------------------------------ #
    pic_rows = []
    for proc in sorted(report.procs, key=_proc_rank):
        if not report.procs[proc].picture_spans:
            continue
        p = report.picture_percentiles(proc)
        pic_rows.append(
            [
                proc,
                p["count"],
                f"{p['p50_ms']:.2f}",
                f"{p['p95_ms']:.2f}",
                f"{p['p99_ms']:.2f}",
                f"{p['max_ms']:.2f}",
            ]
        )
    if pic_rows:
        L.append("Per-picture latency (decode/split span, ms):")
        L += _table(["proc", "pictures", "p50", "p95", "p99", "max"], pic_rows)
        L.append("")

    # ---- end-to-end picture latency ------------------------------------ #
    if report.e2e:
        st = report.e2e_stats()
        L.append("End-to-end picture latency (root ingress -> wall paste, ms):")
        L += _table(
            ["pictures", "p50", "p95", "p99", "max"],
            [
                [
                    st["count"],
                    f"{st['p50_ms']:.2f}",
                    f"{st['p95_ms']:.2f}",
                    f"{st['p99_ms']:.2f}",
                    f"{st['max_ms']:.2f}",
                ]
            ],
        )
        hops = st["hops_s"]
        total = sum(hops.values()) or 1.0
        L.append(
            "Critical-path attribution: "
            + ", ".join(
                f"{h} {hops[h]:.3f}s ({100.0 * hops[h] / total:.0f}%, "
                f"critical on {st['critical'].get(h, 0)} pictures)"
                for h in ("split", "decode", "collect")
            )
        )
        L.append("")

    # ---- waits and flow control --------------------------------------- #
    wait_rows = []
    for proc in sorted(report.procs, key=_proc_rank):
        tot = report.procs[proc].span_totals
        if not any(tot.get(w) for w in WAIT_EVENTS):
            continue
        wait_rows.append(
            [proc] + [f"{tot.get(w, 0.0):.3f}" for w in WAIT_EVENTS]
        )
    if wait_rows:
        L.append("Barrier / flow-control waits (seconds):")
        L += _table(["proc"] + list(WAIT_EVENTS), wait_rows)
        L.append("")
    for proc in sorted(report.procs, key=_proc_rank):
        if report.procs[proc].credit:
            parts = ", ".join(
                f"{peer}: {d.get('stalls', 0)} stalls / {d.get('wait_s', 0.0):.3f}s"
                for peer, d in sorted(report.procs[proc].credit.items())
            )
            L.append(f"Credit stalls at {proc}: {parts}")
    if any(p.credit for p in report.procs.values()):
        L.append("")

    # ---- imbalance ----------------------------------------------------- #
    imb = report.imbalance()
    if imb:
        L.append(
            "Cross-tile imbalance (busy = decode+serve+wire): "
            f"min {imb['min_s']:.3f}s, max {imb['max_s']:.3f}s, "
            f"spread {imb['spread_s']:.3f}s, "
            f"max/mean {imb['max_over_mean']:.3f}"
        )
        L.append("")

    # ---- adaptive repartitioning ---------------------------------------- #
    if report.partition_updates:
        L.append("Partition updates (adaptive repartitioning):")
        applied: Dict[int, List[str]] = {}
        for r in report.repartitions:
            applied.setdefault(int(r.get("version", 0)), []).append(r["proc"])
        for u in report.partition_updates:
            v = int(u.get("version", 0))
            who = sorted(set(applied.get(v, [])), key=_proc_rank)
            L.append(
                f"  v{v} @ picture {u['picture']}: "
                f"x={u.get('x_bounds')} y={u.get('y_bounds')}"
                + (f"  applied by {', '.join(who)}" if who else "")
            )
        L.append("")
    gop_imb = report.gop_imbalance()
    if gop_imb and (report.partition_updates or len(gop_imb) > 1):
        L.append("Per-GOP cross-tile imbalance (busy = decode+serve):")
        L += _table(
            ["gop@", "pictures", "max_s", "mean_s", "max/mean"],
            [
                [
                    g["start"],
                    f"{g['start']}..{g['end'] - 1}",
                    f"{g['max_s']:.3f}",
                    f"{g['mean_s']:.3f}",
                    f"{g['max_over_mean']:.3f}",
                ]
                for g in gop_imb
            ],
        )
        L.append("")

    # ---- wire ---------------------------------------------------------- #
    chan_rows = []
    for proc in sorted(report.procs, key=_proc_rank):
        for chan, st in sorted(report.procs[proc].channels.items()):
            chan_rows.append(
                [
                    proc,
                    chan,
                    f"{st.get('sent_bytes', 0) / 1e6:.3f}",
                    f"{st.get('recv_bytes', 0) / 1e6:.3f}",
                    st.get("sent_frames", 0),
                    st.get("recv_frames", 0),
                    f"{st.get('handle_bytes', 0) / 1e6:.3f}",
                    f"{st.get('send_blocked_s', 0.0):.3f}",
                ]
            )
    if chan_rows:
        L.append("Bytes on wire per channel (MB; handle_MB = payload that")
        L.append("travelled as shm-pool handles, not socket bytes):")
        L += _table(
            ["proc", "channel", "sent_MB", "recv_MB", "sframes", "rframes",
             "handle_MB", "blocked_s"],
            chan_rows,
        )
        L.append("")

    # ---- shared-memory pool -------------------------------------------- #
    pool_rows = []
    for proc in sorted(report.procs, key=_proc_rank):
        ps = report.procs[proc]
        if not ps.pools and not any(k.startswith("pool.") for k in ps.metrics):
            continue
        m = ps.metrics
        hwm = max((st.get("hwm_slabs", 0) for st in ps.pools.values()), default=0)
        pool_rows.append(
            [
                proc,
                int(m.get("pool.leases", 0)),
                int(m.get("pool.releases", 0)),
                int(m.get("pool.exhausted", 0)),
                hwm or int(m.get("pool.hwm_slabs", 0)),
                f"{m.get('pool.bytes_by_handle', 0) / 1e6:.3f}",
                f"{m.get('pool.bytes_by_copy', 0) / 1e6:.3f}",
            ]
        )
    if pool_rows:
        L.append("Shared-memory frame pool (per process):")
        L += _table(
            ["proc", "leases", "releases", "exhausted", "hwm_slabs",
             "by_handle_MB", "by_copy_MB"],
            pool_rows,
        )
        roll = report.pool_rollup()
        L.append(
            f"copies_avoided: {int(roll['copies_avoided'])} payloads / "
            f"{roll['by_handle_bytes'] / 1e6:.3f} MB shipped by handle "
            f"(vs {roll['by_copy_bytes'] / 1e6:.3f} MB by socket copy); "
            f"leases {int(roll['leases'])}, releases {int(roll['releases'])}, "
            f"exhausted-fallbacks {int(roll['exhausted'])}"
        )
        L.append("")

    # ---- wall-service sessions ----------------------------------------- #
    if report.sessions:
        # Per-daemon attribution only appears for fleet runs: more than
        # one daemon carried sessions, or a failover happened.  A single
        # daemon's report is byte-for-byte what it always was.
        daemons = {a.proc for a in report.sessions.values() if a.proc}
        fleet = len(daemons) > 1 or bool(report.failovers)
        L.append("Service sessions (per-session decode time and drop ledger):")
        sess_rows = []
        for sid in sorted(report.sessions):
            agg = report.sessions[sid]
            s = agg.summary or {}
            decoded = s.get("decoded", {})
            row = [
                sid,
                s.get("name", "?"),
                s.get("state", "?"),
                f"{agg.decode_s:.3f}",
                agg.decode_count,
                sum(decoded.values()) if decoded else 0,
                s.get("dropped_b", 0),
                s.get("dropped_p", 0),
                s.get("forced_drops", 0),
                s.get("peak_degrade_level", 0),
                f"{s.get('latency_p95_ms', 0.0):.2f}",
                "yes" if agg.consistent() else "NO",
            ]
            if fleet:
                row.insert(1, agg.proc or "?")
            sess_rows.append(row)
        header = ["sid", "name", "state", "busy_s", "spans", "decoded",
                  "dropB", "dropP", "forced", "peak_lvl", "p95_ms", "ledger_ok"]
        if fleet:
            header.insert(1, "daemon")
        L += _table(header, sess_rows)
        if fleet:
            L.append("")
            L.append("Per-daemon rollup:")
            roll_rows = [
                [
                    name,
                    int(r["sessions"]),
                    int(r["completed"]),
                    f"{r['decode_s']:.3f}",
                    int(r["drops"]),
                    int(r["forced"]),
                ]
                for name, r in sorted(report.daemon_rollup().items())
            ]
            L += _table(
                ["daemon", "sessions", "completed", "decode_s", "drops",
                 "forced"],
                roll_rows,
            )
        if report.failovers:
            L.append("")
            L.append("Failovers:")
            for f in report.failovers:
                L.append(
                    f"  gsid {f.get('gsid')} ({f.get('name', '?')}): "
                    f"{f.get('from_daemon', '?')} -> "
                    f"{f.get('to_daemon') or '(none)'}, "
                    f"last_processed {f.get('last_processed')}, "
                    f"resume_at {f.get('resume_at')}, "
                    f"dropped {f.get('dropped_pictures')}, "
                    f"resume {1e3 * float(f.get('resume_s', 0.0)):.1f} ms"
                )
        bad = [
            sid
            for sid, agg in report.sessions.items()
            if agg.summary is not None and not agg.consistent()
        ]
        if bad:
            L.append(
                "DROP LEDGER MISMATCH: streamed drop events disagree with "
                f"session_summary counters for sid(s) {sorted(bad)}"
            )
        L.append("")
    if report.slo_burns:
        L.append("SLO burn alerts (multi-window burn-rate threshold crossings):")
        for b in report.slo_burns:
            L.append(
                f"  sid {b.get('sid', '?')} on {b.get('proc', '?')} "
                f"@ picture {b.get('picture')}: "
                f"worst burn {float(b.get('burn', 0.0)):.2f}x "
                f"(windows {b.get('windows_s')})"
            )
        L.append("")
    if report.admission_rejects:
        reasons: Dict[str, int] = {}
        for r in report.admission_rejects:
            reasons[r.get("reason", "?")] = reasons.get(r.get("reason", "?"), 0) + 1
        parts = ", ".join(f"{k}: {v}" for k, v in sorted(reasons.items()))
        L.append(f"Admission rejections: {parts}")
        L.append("")

    # ---- crash indicators ---------------------------------------------- #
    for proc in sorted(report.procs, key=_proc_rank):
        if report.procs[proc].open_spans:
            L.append(
                f"UNFINISHED spans on {proc} (died inside?): "
                + ", ".join(report.procs[proc].open_spans)
            )
    return "\n".join(L).rstrip() + "\n"


# --------------------------------------------------------------------- #
# crash post-mortem helper
# --------------------------------------------------------------------- #


def span_tail(events: Sequence[TraceEvent], n: int = 8) -> List[str]:
    """The last ``n`` events of one process's trace, one formatted line
    each — what the supervisor prints per process when a worker dies so
    fault injection shows *where* the worker was, not just that it exited.
    """
    lines = []
    for ev in events[-n:]:
        ph = ev.data.get("ph")
        kind = {"B": "begin", "E": "end  "}.get(ph, "event")
        pic = f" picture={ev.picture}" if ev.picture >= 0 else ""
        dur = (
            f" dur={1e3 * float(ev.data['dur_s']):.2f}ms"
            if "dur_s" in ev.data
            else ""
        )
        lines.append(f"{ev.ts:.6f} {kind} {ev.event}{pic}{dur}")
    return lines


__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "build_report",
    "render_report",
    "span_tail",
    "TraceReport",
    "ProcSummary",
    "SessionAgg",
]
