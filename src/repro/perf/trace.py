"""Trace-driven workloads: feed the timed system from a *real* stream.

The analytic workload model (:func:`repro.perf.costmodel.build_picture_work`)
derives per-tile macroblock counts, bit shares, and exchange volumes from
stream statistics.  This module derives the same quantities from an actual
encoded bitstream by running the real second-level splitter and measuring
what it produces — sub-picture sizes, SPH counts, and MEI exchange
programs — then (optionally) scaling the byte quantities to a full-
resolution stream.

This closes the loop between the two execution paths: the correctness
pipeline validates *what* the system computes, the trace extractor
validates that the performance model's *inputs* match what the real
splitter emits (`tests/test_trace.py`, `benchmarks/bench_trace_validation.py`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.mpeg2.parser import PictureScanner
from repro.parallel.mb_splitter import MacroblockSplitter
from repro.perf.costmodel import Exchange, PictureWork, TileWork
from repro.parallel.subpicture import RunRecord
from repro.wall.layout import TileLayout
from repro.workloads.streams import StreamSpec


@dataclass
class TraceScaling:
    """How a scaled trace maps to a full-resolution stream.

    ``area_factor`` scales per-tile macroblock counts (an area quantity);
    exchange volumes scale with its square root (tile *boundaries* are
    linear); ``bit_factor`` maps the traced stream's achieved bits to the
    model stream's bits.
    """

    area_factor: float = 1.0
    bit_factor: float = 1.0

    @property
    def edge_factor(self) -> float:
        return self.area_factor ** 0.5


def extract_trace(
    stream: bytes,
    layout: TileLayout,
    scaling: Optional[TraceScaling] = None,
) -> List[PictureWork]:
    """Run the real splitter over ``stream`` and express its output as
    the timed system's :class:`PictureWork` records."""
    s = scaling or TraceScaling()
    scanner = PictureScanner(stream)
    sequence, pictures = scanner.scan()
    if (sequence.width, sequence.height) != (layout.width, layout.height):
        raise ValueError("layout raster does not match the traced stream")
    splitter = MacroblockSplitter(sequence, layout)

    works: List[PictureWork] = []
    for i, unit in enumerate(pictures):
        result = splitter.split(unit, i)
        tiles: Dict[int, TileWork] = {}
        for tid, sp in result.subpictures.items():
            payload_bits = 8 * sp.payload_bytes
            n_runs = sum(1 for r in sp.records if isinstance(r, RunRecord))
            tiles[tid] = TileWork(
                n_mbs=int(round(sp.n_macroblocks * s.area_factor)),
                bits=payload_bits * s.bit_factor,
                sp_bytes=int(round(len(sp.serialize()) * s.bit_factor)),
                n_runs=n_runs,
            )
        exchanges: List[Exchange] = []
        pair_bytes: Dict[tuple, int] = {}
        pair_instr: Dict[tuple, int] = {}
        for tid in range(layout.n_tiles):
            prog = result.mei.program(tid)
            for xfer, dst in prog.sends:
                key = (tid, dst)
                pair_bytes[key] = pair_bytes.get(key, 0) + xfer.payload_bytes
                pair_instr[key] = pair_instr.get(key, 0) + 1
        for (src, dst), nbytes in pair_bytes.items():
            exchanges.append(
                Exchange(
                    src=src,
                    dst=dst,
                    nbytes=int(round(nbytes * s.edge_factor)),
                    n_instructions=max(
                        1, int(round(pair_instr[(src, dst)] * s.edge_factor))
                    ),
                )
            )
        works.append(
            PictureWork(
                index=i,
                ptype=result.picture_type,
                nbytes=int(round(unit.size_bytes * s.bit_factor)),
                tiles=tiles,
                exchanges=exchanges,
            )
        )
    return works


def scaling_for(spec: StreamSpec, traced: StreamSpec, traced_bytes: int, n_pics: int) -> TraceScaling:
    """Scaling that maps a trace of ``traced`` (a scaled variant) onto the
    full-resolution ``spec``."""
    area = spec.n_pixels / traced.n_pixels
    traced_avg = traced_bytes / max(1, n_pics)
    bit = spec.avg_frame_bytes / max(1.0, traced_avg)
    return TraceScaling(area_factor=area, bit_factor=bit)


@dataclass
class TraceModelComparison:
    """Aggregate agreement metrics between trace and analytic model."""

    traced_exchange_bytes_per_pic: float
    model_exchange_bytes_per_pic: float
    traced_sph_per_tile_pic: float
    model_sph_per_tile_pic: float
    traced_bits_cv: float  # coefficient of variation of per-tile bits
    model_bits_cv: float

    @property
    def exchange_ratio(self) -> float:
        if self.model_exchange_bytes_per_pic == 0:
            return float("inf")
        return (
            self.traced_exchange_bytes_per_pic
            / self.model_exchange_bytes_per_pic
        )


def compare_trace_to_model(
    traced: List[PictureWork], modeled: List[PictureWork]
) -> TraceModelComparison:
    """Side-by-side aggregates for validation tests."""
    import numpy as np

    def exch(works):
        inter = [w for w in works if w.exchanges]
        if not inter:
            return 0.0
        return sum(e.nbytes for w in inter for e in w.exchanges) / len(inter)

    def sph(works):
        total = sum(tw.n_runs for w in works for tw in w.tiles.values())
        return total / (len(works) * len(works[0].tiles))

    def bits_cv(works):
        per_tile = np.array(
            [[tw.bits for tw in w.tiles.values()] for w in works]
        ).mean(axis=0)
        return float(per_tile.std() / per_tile.mean())

    return TraceModelComparison(
        traced_exchange_bytes_per_pic=exch(traced),
        model_exchange_bytes_per_pic=exch(modeled),
        traced_sph_per_tile_pic=sph(traced),
        model_sph_per_tile_pic=sph(modeled),
        traced_bits_cv=bits_cv(traced),
        model_bits_cv=bits_cv(modeled),
    )
