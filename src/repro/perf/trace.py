"""Trace-driven workloads: feed the timed system from a *real* stream.

The analytic workload model (:func:`repro.perf.costmodel.build_picture_work`)
derives per-tile macroblock counts, bit shares, and exchange volumes from
stream statistics.  This module derives the same quantities from an actual
encoded bitstream by running the real second-level splitter and measuring
what it produces — sub-picture sizes, SPH counts, and MEI exchange
programs — then (optionally) scaling the byte quantities to a full-
resolution stream.

This closes the loop between the two execution paths: the correctness
pipeline validates *what* the system computes, the trace extractor
validates that the performance model's *inputs* match what the real
splitter emits (`tests/test_trace.py`, `benchmarks/bench_trace_validation.py`).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.mpeg2.parser import PictureScanner
from repro.parallel.mb_splitter import MacroblockSplitter
from repro.perf.costmodel import Exchange, PictureWork, TileWork
from repro.parallel.subpicture import RunRecord
from repro.wall.layout import TileLayout
from repro.workloads.streams import StreamSpec


@dataclass
class TraceScaling:
    """How a scaled trace maps to a full-resolution stream.

    ``area_factor`` scales per-tile macroblock counts (an area quantity);
    exchange volumes scale with its square root (tile *boundaries* are
    linear); ``bit_factor`` maps the traced stream's achieved bits to the
    model stream's bits.
    """

    area_factor: float = 1.0
    bit_factor: float = 1.0

    @property
    def edge_factor(self) -> float:
        return self.area_factor ** 0.5


def extract_trace(
    stream: bytes,
    layout: TileLayout,
    scaling: Optional[TraceScaling] = None,
) -> List[PictureWork]:
    """Run the real splitter over ``stream`` and express its output as
    the timed system's :class:`PictureWork` records."""
    s = scaling or TraceScaling()
    scanner = PictureScanner(stream)
    sequence, pictures = scanner.scan()
    if (sequence.width, sequence.height) != (layout.width, layout.height):
        raise ValueError("layout raster does not match the traced stream")
    splitter = MacroblockSplitter(sequence, layout)

    works: List[PictureWork] = []
    for i, unit in enumerate(pictures):
        result = splitter.split(unit, i)
        tiles: Dict[int, TileWork] = {}
        for tid, sp in result.subpictures.items():
            payload_bits = 8 * sp.payload_bytes
            n_runs = sum(1 for r in sp.records if isinstance(r, RunRecord))
            tiles[tid] = TileWork(
                n_mbs=int(round(sp.n_macroblocks * s.area_factor)),
                bits=payload_bits * s.bit_factor,
                sp_bytes=int(round(len(sp.serialize()) * s.bit_factor)),
                n_runs=n_runs,
            )
        exchanges: List[Exchange] = []
        pair_bytes: Dict[tuple, int] = {}
        pair_instr: Dict[tuple, int] = {}
        for tid in range(layout.n_tiles):
            prog = result.mei.program(tid)
            for xfer, dst in prog.sends:
                key = (tid, dst)
                pair_bytes[key] = pair_bytes.get(key, 0) + xfer.payload_bytes
                pair_instr[key] = pair_instr.get(key, 0) + 1
        for (src, dst), nbytes in pair_bytes.items():
            exchanges.append(
                Exchange(
                    src=src,
                    dst=dst,
                    nbytes=int(round(nbytes * s.edge_factor)),
                    n_instructions=max(
                        1, int(round(pair_instr[(src, dst)] * s.edge_factor))
                    ),
                )
            )
        works.append(
            PictureWork(
                index=i,
                ptype=result.picture_type,
                nbytes=int(round(unit.size_bytes * s.bit_factor)),
                tiles=tiles,
                exchanges=exchanges,
            )
        )
    return works


def scaling_for(spec: StreamSpec, traced: StreamSpec, traced_bytes: int, n_pics: int) -> TraceScaling:
    """Scaling that maps a trace of ``traced`` (a scaled variant) onto the
    full-resolution ``spec``."""
    area = spec.n_pixels / traced.n_pixels
    traced_avg = traced_bytes / max(1, n_pics)
    bit = spec.avg_frame_bytes / max(1.0, traced_avg)
    return TraceScaling(area_factor=area, bit_factor=bit)


@dataclass
class TraceModelComparison:
    """Aggregate agreement metrics between trace and analytic model."""

    traced_exchange_bytes_per_pic: float
    model_exchange_bytes_per_pic: float
    traced_sph_per_tile_pic: float
    model_sph_per_tile_pic: float
    traced_bits_cv: float  # coefficient of variation of per-tile bits
    model_bits_cv: float

    @property
    def exchange_ratio(self) -> float:
        if self.model_exchange_bytes_per_pic == 0:
            return float("inf")
        return (
            self.traced_exchange_bytes_per_pic
            / self.model_exchange_bytes_per_pic
        )


def compare_trace_to_model(
    traced: List[PictureWork], modeled: List[PictureWork]
) -> TraceModelComparison:
    """Side-by-side aggregates for validation tests."""
    import numpy as np

    def exch(works):
        inter = [w for w in works if w.exchanges]
        if not inter:
            return 0.0
        return sum(e.nbytes for w in inter for e in w.exchanges) / len(inter)

    def sph(works):
        total = sum(tw.n_runs for w in works for tw in w.tiles.values())
        return total / (len(works) * len(works[0].tiles))

    def bits_cv(works):
        per_tile = np.array(
            [[tw.bits for tw in w.tiles.values()] for w in works]
        ).mean(axis=0)
        mean = per_tile.mean()
        if mean == 0:
            # an all-skipped picture set carries no bits anywhere; zero
            # spread, not a division error
            return 0.0
        return float(per_tile.std() / mean)

    return TraceModelComparison(
        traced_exchange_bytes_per_pic=exch(traced),
        model_exchange_bytes_per_pic=exch(modeled),
        traced_sph_per_tile_pic=sph(traced),
        model_sph_per_tile_pic=sph(modeled),
        traced_bits_cv=bits_cv(traced),
        model_bits_cv=bits_cv(modeled),
    )


# --------------------------------------------------------------------- #
# Cross-process execution tracing (the multi-process cluster runtime)
# --------------------------------------------------------------------- #
#
# Every cluster process appends :class:`TraceEvent` lines to its own JSONL
# file; the supervisor merges them into one wall-clock timeline after the
# run.  Timestamps are ``time.time()`` — all processes share one host, so
# the wall clock is the only cross-process-comparable time source.

TRACE_SUFFIX = ".trace.jsonl"


@dataclass
class TraceEvent:
    """One timestamped event from one cluster process."""

    ts: float
    proc: str
    event: str
    picture: int = -1
    data: Dict = field(default_factory=dict)

    def to_json(self) -> str:
        rec = {"ts": self.ts, "proc": self.proc, "event": self.event}
        if self.picture >= 0:
            rec["picture"] = self.picture
        if self.data:
            rec["data"] = self.data
        return json.dumps(rec, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        rec = json.loads(line)
        return cls(
            ts=rec["ts"],
            proc=rec["proc"],
            event=rec["event"],
            picture=rec.get("picture", -1),
            data=rec.get("data", {}),
        )


class Span:
    """One begin/end interval in a process's trace stream.

    Enter emits a ``ph="B"`` event immediately (so a crash mid-span leaves
    the begin visible to the post-mortem), exit emits ``ph="E"`` carrying
    ``dur_s`` measured with the monotonic clock.  ``with``-able and
    re-entrant-safe per instance only once.
    """

    __slots__ = ("writer", "event", "picture", "data", "_wall0", "_t0")

    def __init__(self, writer: "TraceWriter", event: str, picture: int, data: Dict):
        self.writer = writer
        self.event = event
        self.picture = picture
        self.data = data

    def __enter__(self) -> "Span":
        self._wall0 = time.time()
        self._t0 = time.perf_counter()
        self.writer.emit(
            self.event, picture=self.picture, ts=self._wall0, ph="B", **self.data
        )
        return self

    def __exit__(self, *exc) -> None:
        dt = time.perf_counter() - self._t0
        self.writer.emit(
            self.event,
            picture=self.picture,
            ts=self._wall0 + dt,
            ph="E",
            dur_s=round(dt, 9),
        )


class _NullSpan:
    """Span stand-in when span emission is disabled: zero work."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class TraceWriter:
    """Append-only JSONL event stream for one process.

    Each ``emit`` is written and flushed immediately so a crashed process
    still leaves a usable partial trace for the post-mortem merge.  Emits
    are thread-safe (role main loops, pump threads and heartbeats share
    one writer); events from non-main threads carry a ``tid`` so the
    timeline export can give each thread its own track.  ``spans=False``
    keeps the coarse event stream but turns :meth:`span` into a no-op —
    the telemetry kill-switch for overhead measurements.

    ``with``-able: closing in a ``finally``/``with`` guarantees the last
    buffered line reaches the file even when the role body raises.
    """

    def __init__(self, path: Union[str, Path], proc: str, spans: bool = True):
        self.path = Path(path)
        self.proc = proc
        self.spans = spans
        self._lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8")

    def emit(
        self,
        event: str,
        picture: int = -1,
        ts: Optional[float] = None,
        **data,
    ) -> TraceEvent:
        thread = threading.current_thread().name
        if thread != "MainThread":
            data.setdefault("tid", thread)
        ev = TraceEvent(
            ts=time.time() if ts is None else ts,
            proc=self.proc,
            event=event,
            picture=picture,
            data=data,
        )
        line = ev.to_json() + "\n"
        with self._lock:
            if not self._fh.closed:
                self._fh.write(line)
                self._fh.flush()
        return ev

    def span(self, event: str, picture: int = -1, **data):
        """Begin/end interval: ``with tracer.span("parse", picture=3): ...``"""
        if not self.spans:
            return _NULL_SPAN
        return Span(self, event, picture, data)

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace_file(
    path: Union[str, Path], strict: bool = True
) -> List[TraceEvent]:
    """Parse one JSONL trace.  ``strict=False`` skips unparsable lines
    (e.g. the torn final write of a SIGKILLed worker) instead of raising.
    """
    events = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(TraceEvent.from_json(line))
        except (ValueError, KeyError):
            if strict:
                raise
    return events


def merge_traces(
    trace_dir: Union[str, Path],
    output: Optional[Union[str, Path]] = None,
    strict: bool = True,
    recursive: bool = False,
) -> List[TraceEvent]:
    """Collate every per-process trace in ``trace_dir`` into one timeline.

    Events are sorted by wall-clock timestamp (process name breaks ties so
    the merge is deterministic).  When ``output`` is given the merged
    timeline is also written as JSONL.  ``strict=False`` tolerates torn
    lines from crashed workers (the supervisor's failure path).

    ``recursive=True`` also descends into subdirectories — the fleet
    layout, where the gateway's trace sits at the top of the run
    directory and each daemon traces into its own subdirectory.
    """
    pattern = f"**/*{TRACE_SUFFIX}" if recursive else f"*{TRACE_SUFFIX}"
    events: List[TraceEvent] = []
    for path in sorted(Path(trace_dir).glob(pattern)):
        if Path(path).name == "merged" + TRACE_SUFFIX:
            continue  # never fold a previous merge back into itself
        events.extend(read_trace_file(path, strict=strict))
    events.sort(key=lambda e: (e.ts, e.proc))
    if output is not None:
        with open(output, "w", encoding="utf-8") as fh:
            for ev in events:
                fh.write(ev.to_json() + "\n")
    return events


def load_stage_times(trace_dir: Union[str, Path]) -> Dict[str, "StageTimes"]:
    """Per-process :class:`~repro.perf.metrics.StageTimes` from a run's traces.

    The single loader behind the supervisor's harvest and the cluster
    benchmark's per-stage attribution: reads every ``*.trace.jsonl`` in
    ``trace_dir``, folds each process's ``stage_times`` events (a process
    may emit several — they accumulate), and returns ``{proc: StageTimes}``
    for every process that emitted any.
    """
    from repro.perf.metrics import StageTimes

    by_proc: Dict[str, StageTimes] = {}
    for ev in merge_traces(trace_dir):
        if ev.event != "stage_times":
            continue
        st = by_proc.setdefault(ev.proc, StageTimes())
        st.merge(StageTimes.from_dict(ev.data))
    return by_proc
