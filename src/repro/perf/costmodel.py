"""Calibrated cost model for the timed 1-k-(m,n) system.

The paper's numbers are wall-clock measurements on 733 MHz Pentium III
decoders over Myrinet.  The DES reproduces the *pipeline*, and this module
supplies the per-operation costs.  Constants are calibrated against the
paper's surviving quantitative anchors:

1. a one-level splitter saturates beyond ~4 decoders (§5.3) — so one
   macroblock split costs ~1/4 .. 1/5 of one full decode;
2. 1-4-(4,4) plays the 3840x2800 Orion stream at 38.9 fps (§5.5);
3. decoder work share falls from ~80 % (stream 8, 2x2) to ~40 % (4x4)
   as remote-reference serving grows (§5.4, figure 7);
4. splitter send bandwidth exceeds its receive bandwidth by ~20 % — the
   SPH overhead (§5.6, figure 9).

Costs scale with both macroblock count (IDCT/MC work) and coded bits (VLC
work), which is what makes DVD (high bpp) and the 0.3 bpp family behave
differently, and what makes the localized-detail Orion tiles imbalanced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.mpeg2.constants import MB_SIZE, PictureType
from repro.parallel.subpicture import SPH
from repro.wall.layout import TileLayout
from repro.workloads.streams import StreamSpec


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs in seconds on a reference 733 MHz decoder node."""

    # decoding: fixed per-macroblock (IDCT, MC, write-out) + per coded bit
    decode_mb_fixed: float = 3.2e-6
    decode_per_bit: float = 22e-9
    # display: color conversion + blit, per macroblock
    display_mb: float = 0.8e-6
    # macroblock splitting: VLC parse + sort, no pixel work
    split_mb_fixed: float = 0.35e-6
    split_per_bit: float = 7e-9
    # root splitter: start-code scan + copy to output buffer, per byte
    root_per_byte: float = 2.0e-9
    # remote-block service: extract + pack one reference region, per byte
    serve_per_byte: float = 20e-9
    # applying received blocks into local reference copies, per byte
    apply_per_byte: float = 15e-9
    # executing one MEI instruction: bounds-check, extract a ~17x17
    # region, pack, and post the send (the dominant per-exchange cost)
    mei_per_instruction: float = 25e-6
    # building/sending one ack
    ack_cost: float = 5e-6
    # console (root) node speed relative to decoder nodes (550 vs 733 MHz)
    root_speed: float = 550.0 / 733.0

    # ------------------------------------------------------------------ #

    def t_decode_mbs(self, n_mbs: float, bits: float) -> float:
        """Decode+display time for ``n_mbs`` macroblocks holding ``bits``."""
        return n_mbs * (self.decode_mb_fixed + self.display_mb) + bits * self.decode_per_bit

    def t_split_picture(self, n_mbs: float, bits: float) -> float:
        """Macroblock-split time for one whole picture."""
        return n_mbs * self.split_mb_fixed + bits * self.split_per_bit

    def t_root_copy(self, nbytes: float) -> float:
        return nbytes * self.root_per_byte / self.root_speed

    # Convenience estimates used by the §4.6 configuration rule ---------- #

    def t_s(self, spec: StreamSpec) -> float:
        """Average per-picture split time for a stream."""
        return self.t_split_picture(spec.mbs_per_frame, spec.avg_frame_bytes * 8)

    def t_d(self, spec: StreamSpec, layout: TileLayout) -> float:
        """Average per-picture decode time of the *slowest* tile."""
        loads = spec.tile_workloads(layout)
        bits = spec.avg_frame_bytes * 8
        return max(
            self.t_decode_mbs(w["mbs"], bits * w["bits_fraction"])
            for w in loads.values()
        )


# -------------------------------------------------------------------------- #
# per-picture workload derivation
# -------------------------------------------------------------------------- #


@dataclass
class Exchange:
    """One modeled MEI transfer between two tiles for one picture."""

    src: int
    dst: int
    nbytes: int
    n_instructions: int


@dataclass
class TileWork:
    """What one tile decoder must do for one picture."""

    n_mbs: int
    bits: float
    sp_bytes: int  # sub-picture message size (payload + SPH overhead)
    n_runs: int  # partial slices -> SPH count


@dataclass
class PictureWork:
    """The timed system's unit of work: one coded picture."""

    index: int
    ptype: PictureType
    nbytes: int  # coded picture size (root -> splitter message)
    tiles: Dict[int, TileWork]
    exchanges: List[Exchange]

    def exchanges_from(self, tile: int) -> List[Exchange]:
        return [e for e in self.exchanges if e.src == tile]

    def exchanges_to(self, tile: int) -> List[Exchange]:
        return [e for e in self.exchanges if e.dst == tile]


# Bytes of one exchanged reference region: a 17x17 luma patch plus 4:2:0
# chroma (~1.5x), the unit a single MEI instruction moves.
_REGION_BYTES = 434


def _neighbor_pairs(layout: TileLayout) -> List[Tuple[int, int, int]]:
    """Directed (src, dst, shared_edge_px) pairs for edge-adjacent tiles."""
    out = []
    for a in layout:
        for b in layout:
            if a.tid == b.tid:
                continue
            # shared vertical edge
            if abs(a.col - b.col) == 1 and a.row == b.row:
                edge = min(a.rect.y1, b.rect.y1) - max(a.rect.y0, b.rect.y0)
                if edge > 0:
                    out.append((a.tid, b.tid, edge))
            elif abs(a.row - b.row) == 1 and a.col == b.col:
                edge = min(a.rect.x1, b.rect.x1) - max(a.rect.x0, b.rect.x0)
                if edge > 0:
                    out.append((a.tid, b.tid, edge))
    return out


def _directions_factor(ptype: PictureType) -> int:
    if ptype == PictureType.I:
        return 0
    if ptype == PictureType.P:
        return 1
    return 2  # B: forward + backward references


def build_picture_work(
    spec: StreamSpec,
    layout: TileLayout,
    n_frames: Optional[int] = None,
) -> List[PictureWork]:
    """Derive the per-picture workloads (decode order ~ display order here;
    the reorder does not change any of the modeled costs)."""
    n = n_frames or spec.n_frames
    types = spec.picture_types(n)
    tile_loads = spec.tile_workloads(layout)
    weights = spec.mb_bit_weights()
    neighbor = _neighbor_pairs(layout)
    sph_size = SPH.packed_size() + 13  # + run-record framing
    # Probability that a boundary macroblock's motion vector crosses into
    # the neighbouring tile: vectors are roughly symmetric around zero, so
    # only ~half point toward the edge, reaching ~|mv| past it on average.
    cross_prob = min(1.0, spec.motion_pixels / (2.0 * MB_SIZE))

    works: List[PictureWork] = []
    for i, ptype in enumerate(types):
        pic_bytes = spec.picture_bytes(ptype, n)
        tiles: Dict[int, TileWork] = {}
        for tid, load in tile_loads.items():
            bits = pic_bytes * 8 * load["bits_fraction"]
            n_runs = load["mb_rows"]
            tiles[tid] = TileWork(
                n_mbs=load["mbs"],
                bits=bits,
                sp_bytes=int(bits / 8 + n_runs * sph_size + 32),
                n_runs=n_runs,
            )
        exchanges: List[Exchange] = []
        dirs = _directions_factor(ptype)
        if dirs:
            for src, dst, edge_px in neighbor:
                # Weight the boundary traffic by the local bit density so
                # detailed regions (which also move most) exchange more.
                t_src = layout.tile(src)
                mx = min(spec.mb_width - 1, max(0, (t_src.rect.x0 + t_src.rect.x1) // 2 // MB_SIZE))
                my = min(spec.mb_height - 1, max(0, (t_src.rect.y0 + t_src.rect.y1) // 2 // MB_SIZE))
                local_w = float(weights[my, mx]) * weights.size
                edge_mbs = edge_px / MB_SIZE
                n_instr = edge_mbs * cross_prob * dirs * local_w
                # A boundary macroblock can request at most one region per
                # reference direction.
                n_instr = max(1, round(min(n_instr, edge_mbs * dirs)))
                exchanges.append(
                    Exchange(
                        src=src,
                        dst=dst,
                        nbytes=int(n_instr * _REGION_BYTES),
                        n_instructions=n_instr,
                    )
                )
        works.append(
            PictureWork(
                index=i,
                ptype=ptype,
                nbytes=int(pic_bytes),
                tiles=tiles,
                exchanges=exchanges,
            )
        )
    return works
