"""Timing/bandwidth metrics collected by the timed system.

:class:`RuntimeBreakdown` reproduces Figure 7's five buckets exactly as the
paper defines them (§5.4):

- **work** — the time to decode and display a picture;
- **serve** — the time to prepare data for remote decoders;
- **receive** — the time waiting for sub-pictures from splitters;
- **wait_remote** — the time waiting for remote blocks;
- **ack** — the time to send acks to splitters.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple


@dataclass
class RuntimeBreakdown:
    work: float = 0.0
    serve: float = 0.0
    receive: float = 0.0
    wait_remote: float = 0.0
    ack: float = 0.0

    BUCKETS = ("work", "serve", "receive", "wait_remote", "ack")

    @property
    def total(self) -> float:
        return self.work + self.serve + self.receive + self.wait_remote + self.ack

    def fractions(self) -> Dict[str, float]:
        t = self.total
        if t <= 0:
            return {b: 0.0 for b in self.BUCKETS}
        return {b: getattr(self, b) / t for b in self.BUCKETS}

    def per_frame_ms(self, n_frames: int) -> Dict[str, float]:
        return {b: 1e3 * getattr(self, b) / max(1, n_frames) for b in self.BUCKETS}

    def add(self, bucket: str, dt: float) -> None:
        if bucket not in self.BUCKETS:
            raise KeyError(bucket)
        setattr(self, bucket, getattr(self, bucket) + dt)


@dataclass
class StageTimes:
    """Wall-clock split of the two-phase decode (entropy vs. pixels).

    - **parse** — VLC/entropy decoding (inherently serial);
    - **plan** — assembling the flat reconstruction plan;
    - **execute** — the batched dequant/IDCT/MC/scatter phase (or the whole
      per-macroblock reconstruction when the reference path runs);
    - **wire** — encoding/decoding messages at the process boundary (plan
      and frame codecs; zero for in-process decoders).
    """

    parse: float = 0.0
    plan: float = 0.0
    execute: float = 0.0
    wire: float = 0.0
    pictures: int = 0

    STAGES = ("parse", "plan", "execute", "wire")

    @property
    def total(self) -> float:
        return self.parse + self.plan + self.execute + self.wire

    @property
    def reconstruct(self) -> float:
        """Everything that is not entropy decoding."""
        return self.plan + self.execute

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        if name not in self.STAGES:
            raise KeyError(name)
        t0 = time.perf_counter()
        try:
            yield
        finally:
            setattr(self, name, getattr(self, name) + time.perf_counter() - t0)

    def per_picture_ms(self) -> Dict[str, float]:
        n = max(1, self.pictures)
        return {s: 1e3 * getattr(self, s) / n for s in self.STAGES}

    def merge(self, other: "StageTimes") -> None:
        for s in self.STAGES:
            setattr(self, s, getattr(self, s) + getattr(other, s))
        self.pictures += other.pictures

    def as_dict(self) -> Dict[str, float]:
        """JSON-safe snapshot, used by the cross-process trace stream."""
        out: Dict[str, float] = {s: getattr(self, s) for s in self.STAGES}
        out["pictures"] = self.pictures
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "StageTimes":
        st = cls(**{s: float(data.get(s, 0.0)) for s in cls.STAGES})
        st.pictures = int(data.get("pictures", 0))
        return st


@dataclass
class NodeBandwidth:
    """Send/receive byte counts for one node (or one channel) over a run."""

    sent: int = 0
    received: int = 0

    def mbps(self, duration: float) -> Tuple[float, float]:
        """(send, receive) rates in MB/s; zero for a degenerate duration."""
        if duration <= 0:
            return (0.0, 0.0)
        return (self.sent / duration / 1e6, self.received / duration / 1e6)


def average_breakdown(parts: List[RuntimeBreakdown]) -> RuntimeBreakdown:
    out = RuntimeBreakdown()
    if not parts:
        return out
    for b in RuntimeBreakdown.BUCKETS:
        out.add(b, sum(getattr(p, b) for p in parts) / len(parts))
    return out
