"""Timing/bandwidth metrics collected by the timed system, plus the
labeled metric-family layer of the live observability plane.

:class:`RuntimeBreakdown` reproduces Figure 7's five buckets exactly as the
paper defines them (§5.4):

- **work** — the time to decode and display a picture;
- **serve** — the time to prepare data for remote decoders;
- **receive** — the time waiting for sub-pictures from splitters;
- **wait_remote** — the time waiting for remote blocks;
- **ack** — the time to send acks to splitters.

The family layer (:class:`CounterFamily` / :class:`GaugeFamily` /
:class:`HistogramFamily`, minted from :func:`families`) adds Prometheus-
style **labels** on top of the flat name→metric registry in
:mod:`repro.perf.telemetry`: one family name, many label-keyed children
(``pacer_drops_total{rung="skip-b"}``).  :func:`encode_prometheus` renders
a JSON snapshot — families plus the flat registry plus per-channel wire
stats — into the Prometheus text exposition format, which is what the
``VERB_STATS`` service verb and the optional ``/metrics`` HTTP listener
serve.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass
class RuntimeBreakdown:
    work: float = 0.0
    serve: float = 0.0
    receive: float = 0.0
    wait_remote: float = 0.0
    ack: float = 0.0

    BUCKETS = ("work", "serve", "receive", "wait_remote", "ack")

    @property
    def total(self) -> float:
        return self.work + self.serve + self.receive + self.wait_remote + self.ack

    def fractions(self) -> Dict[str, float]:
        t = self.total
        if t <= 0:
            return {b: 0.0 for b in self.BUCKETS}
        return {b: getattr(self, b) / t for b in self.BUCKETS}

    def per_frame_ms(self, n_frames: int) -> Dict[str, float]:
        return {b: 1e3 * getattr(self, b) / max(1, n_frames) for b in self.BUCKETS}

    def add(self, bucket: str, dt: float) -> None:
        if bucket not in self.BUCKETS:
            raise KeyError(bucket)
        setattr(self, bucket, getattr(self, bucket) + dt)


@dataclass
class StageTimes:
    """Wall-clock split of the two-phase decode (entropy vs. pixels).

    - **parse** — VLC/entropy decoding (inherently serial);
    - **plan** — assembling the flat reconstruction plan;
    - **execute** — the batched dequant/IDCT/MC/scatter phase (or the whole
      per-macroblock reconstruction when the reference path runs);
    - **wire** — encoding/decoding messages at the process boundary (plan
      and frame codecs; zero for in-process decoders).
    """

    parse: float = 0.0
    plan: float = 0.0
    execute: float = 0.0
    wire: float = 0.0
    pictures: int = 0

    STAGES = ("parse", "plan", "execute", "wire")

    @property
    def total(self) -> float:
        return self.parse + self.plan + self.execute + self.wire

    @property
    def reconstruct(self) -> float:
        """Everything that is not entropy decoding."""
        return self.plan + self.execute

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        if name not in self.STAGES:
            raise KeyError(name)
        t0 = time.perf_counter()
        try:
            yield
        finally:
            setattr(self, name, getattr(self, name) + time.perf_counter() - t0)

    def per_picture_ms(self) -> Dict[str, float]:
        n = max(1, self.pictures)
        return {s: 1e3 * getattr(self, s) / n for s in self.STAGES}

    def merge(self, other: "StageTimes") -> None:
        for s in self.STAGES:
            setattr(self, s, getattr(self, s) + getattr(other, s))
        self.pictures += other.pictures

    def as_dict(self) -> Dict[str, float]:
        """JSON-safe snapshot, used by the cross-process trace stream."""
        out: Dict[str, float] = {s: getattr(self, s) for s in self.STAGES}
        out["pictures"] = self.pictures
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "StageTimes":
        st = cls(**{s: float(data.get(s, 0.0)) for s in cls.STAGES})
        st.pictures = int(data.get("pictures", 0))
        return st


@dataclass
class NodeBandwidth:
    """Send/receive byte counts for one node (or one channel) over a run."""

    sent: int = 0
    received: int = 0

    def mbps(self, duration: float) -> Tuple[float, float]:
        """(send, receive) rates in MB/s; zero for a degenerate duration."""
        if duration <= 0:
            return (0.0, 0.0)
        return (self.sent / duration / 1e6, self.received / duration / 1e6)


def average_breakdown(parts: List[RuntimeBreakdown]) -> RuntimeBreakdown:
    out = RuntimeBreakdown()
    if not parts:
        return out
    for b in RuntimeBreakdown.BUCKETS:
        out.add(b, sum(getattr(p, b) for p in parts) / len(parts))
    return out


# --------------------------------------------------------------------- #
# labeled metric families (the obs-plane exposition layer)
# --------------------------------------------------------------------- #

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(
    labelnames: Tuple[str, ...], labels: Dict[str, str]
) -> LabelKey:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared "
            f"labelnames {sorted(labelnames)}"
        )
    return tuple((k, str(labels[k])) for k in labelnames)


class MetricFamily:
    """One named family of label-keyed children (Prometheus data model).

    A family with no labelnames has exactly one child, reached with
    ``labels()``.  Children are created on first use and live for the
    family's lifetime; callers must keep label cardinality bounded
    (rung names, daemon names — never session ids).
    """

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[LabelKey, object] = {}

    def _new_child(self):  # pragma: no cover - subclasses override
        raise NotImplementedError

    def labels(self, **labels: str):
        key = _label_key(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
            return child

    def samples(self) -> List[Tuple[Dict[str, str], object]]:
        with self._lock:
            return [
                (dict(key), child) for key, child in self._children.items()
            ]

    def snapshot(self) -> Dict:
        """JSON-safe dump: kind, labelnames, one sample per child."""
        out = {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "samples": [],
        }
        for labels, child in self.samples():
            out["samples"].append(
                {"labels": labels, **self._sample_value(child)}
            )
        return out

    def _sample_value(self, child) -> Dict:
        return {"value": child.value}


class CounterFamily(MetricFamily):
    kind = "counter"

    def _new_child(self):
        from repro.perf.telemetry import Counter

        return Counter()

    def inc(self, n: float = 1, **labels: str) -> None:
        self.labels(**labels).inc(n)


class GaugeFamily(MetricFamily):
    kind = "gauge"

    def _new_child(self):
        from repro.perf.telemetry import Gauge

        return Gauge()

    def set(self, v: float, **labels: str) -> None:
        self.labels(**labels).set(v)


class HistogramFamily(MetricFamily):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        bounds: Optional[Sequence[float]] = None,
    ):
        super().__init__(name, help, labelnames)
        if bounds is None:
            from repro.perf.telemetry import DEFAULT_BOUNDS

            bounds = DEFAULT_BOUNDS
        self.bounds = tuple(float(b) for b in bounds)

    def _new_child(self):
        from repro.perf.telemetry import Histogram

        return Histogram(self.bounds)

    def observe(self, v: float, **labels: str) -> None:
        self.labels(**labels).observe(v)

    def _sample_value(self, child) -> Dict:
        return {
            "hist": {
                "count": child.count,
                "sum": round(child.sum, 9),
                "buckets": [
                    [("+Inf" if le == float("inf") else le), c]
                    for le, c in child.buckets()
                ],
            }
        }


class FamilyRegistry:
    """Create-or-get store of metric families, snapshotted as one dict."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _get(self, cls, name: str, **kwargs) -> MetricFamily:
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = self._families[name] = cls(name, **kwargs)
            elif not isinstance(fam, cls):
                raise ValueError(
                    f"family {name!r} already registered as {fam.kind}"
                )
            return fam

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> CounterFamily:
        return self._get(CounterFamily, name, help=help, labelnames=labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> GaugeFamily:
        return self._get(GaugeFamily, name, help=help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        bounds: Optional[Sequence[float]] = None,
    ) -> HistogramFamily:
        return self._get(
            HistogramFamily, name, help=help, labelnames=labelnames,
            bounds=bounds,
        )

    def snapshot(self) -> Dict[str, Dict]:
        with self._lock:
            fams = list(self._families.values())
        return {fam.name: fam.snapshot() for fam in fams}

    def reset(self) -> None:
        with self._lock:
            self._families.clear()


_FAMILIES = FamilyRegistry()


def families() -> FamilyRegistry:
    """The process-global family registry (one per worker process)."""
    return _FAMILIES


# --------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------- #


def _prom_name(name: str) -> str:
    out = []
    for i, c in enumerate(name):
        if c.isalnum() or c == "_" or (c == ":" and i):
            out.append(c)
        else:
            out.append("_")
    s = "".join(out)
    if s and s[0].isdigit():
        s = "_" + s
    return s


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{_prom_name(k)}="' + str(v).replace("\\", r"\\")
        .replace('"', r"\"").replace("\n", r"\n") + '"'
        for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _prom_num(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    if v == float("-inf"):
        return "-Inf"
    f = float(v)
    return repr(int(f)) if f == int(f) else repr(f)


def encode_prometheus(snapshot: Dict, prefix: str = "repro") -> str:
    """Render an obs-plane JSON snapshot as Prometheus text exposition.

    ``snapshot`` is the document :func:`repro.obs.obs_snapshot` builds:
    ``families`` (this module's labeled families), ``metrics`` (the flat
    :mod:`repro.perf.telemetry` registry) and ``channels`` (per-channel
    wire stats, closed-channel rollup included).  Flat dotted names are
    sanitized (``pool.leases`` → ``repro_pool_leases``); channels render
    as one gauge per stat with a ``channel`` label.
    """
    L: List[str] = []

    for name, fam in sorted(snapshot.get("families", {}).items()):
        pname = _prom_name(name)
        if fam.get("help"):
            L.append(f"# HELP {pname} {fam['help']}")
        L.append(f"# TYPE {pname} {fam.get('kind', 'untyped')}")
        for sample in fam.get("samples", []):
            labels = sample.get("labels", {})
            if "hist" in sample:
                h = sample["hist"]
                for le, c in h.get("buckets", []):
                    le_s = le if le == "+Inf" else _prom_num(float(le))
                    L.append(
                        f"{pname}_bucket"
                        + _prom_labels({**labels, "le": le_s})
                        + f" {int(c)}"
                    )
                L.append(
                    f"{pname}_sum{_prom_labels(labels)} "
                    f"{_prom_num(h.get('sum', 0.0))}"
                )
                L.append(
                    f"{pname}_count{_prom_labels(labels)} "
                    f"{int(h.get('count', 0))}"
                )
            else:
                L.append(
                    f"{pname}{_prom_labels(labels)} "
                    f"{_prom_num(sample.get('value', 0.0))}"
                )

    metrics = snapshot.get("metrics", {})
    for name, v in sorted(metrics.get("counters", {}).items()):
        pname = f"{prefix}_{_prom_name(name)}"
        L.append(f"# TYPE {pname} counter")
        L.append(f"{pname} {_prom_num(v)}")
    for name, v in sorted(metrics.get("gauges", {}).items()):
        pname = f"{prefix}_{_prom_name(name)}"
        L.append(f"# TYPE {pname} gauge")
        L.append(f"{pname} {_prom_num(v)}")
    for name, h in sorted(metrics.get("histograms", {}).items()):
        pname = f"{prefix}_{_prom_name(name)}_seconds"
        L.append(f"# TYPE {pname} summary")
        for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            if key in h:
                L.append(
                    f"{pname}{_prom_labels({'quantile': q})} "
                    f"{_prom_num(h[key])}"
                )
        L.append(f"{pname}_sum {_prom_num(h.get('sum', 0.0))}")
        L.append(f"{pname}_count {int(h.get('count', 0))}")

    chan_stats = snapshot.get("channels", {})
    if chan_stats:
        stat_names = sorted({k for st in chan_stats.values() for k in st})
        for stat in stat_names:
            pname = f"{prefix}_channel_{_prom_name(stat)}"
            L.append(f"# TYPE {pname} gauge")
            for chan, st in sorted(chan_stats.items()):
                if stat in st:
                    L.append(
                        f"{pname}{_prom_labels({'channel': chan})} "
                        f"{_prom_num(st[stat])}"
                    )

    return "\n".join(L) + ("\n" if L else "")
