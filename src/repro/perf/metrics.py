"""Timing/bandwidth metrics collected by the timed system.

:class:`RuntimeBreakdown` reproduces Figure 7's five buckets exactly as the
paper defines them (§5.4):

- **work** — the time to decode and display a picture;
- **serve** — the time to prepare data for remote decoders;
- **receive** — the time waiting for sub-pictures from splitters;
- **wait_remote** — the time waiting for remote blocks;
- **ack** — the time to send acks to splitters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class RuntimeBreakdown:
    work: float = 0.0
    serve: float = 0.0
    receive: float = 0.0
    wait_remote: float = 0.0
    ack: float = 0.0

    BUCKETS = ("work", "serve", "receive", "wait_remote", "ack")

    @property
    def total(self) -> float:
        return self.work + self.serve + self.receive + self.wait_remote + self.ack

    def fractions(self) -> Dict[str, float]:
        t = self.total
        if t <= 0:
            return {b: 0.0 for b in self.BUCKETS}
        return {b: getattr(self, b) / t for b in self.BUCKETS}

    def per_frame_ms(self, n_frames: int) -> Dict[str, float]:
        return {b: 1e3 * getattr(self, b) / max(1, n_frames) for b in self.BUCKETS}

    def add(self, bucket: str, dt: float) -> None:
        if bucket not in self.BUCKETS:
            raise KeyError(bucket)
        setattr(self, bucket, getattr(self, bucket) + dt)


@dataclass
class NodeBandwidth:
    """Send/receive byte counts for one node over a run."""

    sent: int = 0
    received: int = 0

    def mbps(self, duration: float) -> tuple:
        return (self.sent / duration / 1e6, self.received / duration / 1e6)


def average_breakdown(parts: List[RuntimeBreakdown]) -> RuntimeBreakdown:
    out = RuntimeBreakdown()
    if not parts:
        return out
    for b in RuntimeBreakdown.BUCKETS:
        out.add(b, sum(getattr(p, b) for p in parts) / len(parts))
    return out
