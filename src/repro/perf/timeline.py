"""Activity timelines from the timed system — reproduces Figure 5.

The paper's Figure 5 shows the flow of work units and messages in a
two-level system: the root copying/sending pictures, splitters receiving,
splitting and sending, decoders receiving and decoding, with the phases of
successive pictures overlapping (the pipeline the ack protocol creates).

:class:`TimelineTrace` collects (actor, phase, start, end, picture) spans
from a :class:`~repro.parallel.system.TimedSystem` run;
:func:`render_ascii` draws them as a text gantt chart, one row per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Single-character glyph per phase in the ASCII rendering.
PHASE_GLYPHS = {
    "copy": "c",
    "send": ">",
    "split": "S",
    "wait": ".",
    "receive": "r",
    "serve": "s",
    "fetch": "f",
    "decode": "D",
    "ack": "a",
}


@dataclass(frozen=True)
class Span:
    actor: str
    phase: str
    start: float
    end: float
    picture: int = -1

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TimelineTrace:
    spans: List[Span] = field(default_factory=list)

    def record(
        self, actor: str, phase: str, start: float, end: float, picture: int = -1
    ) -> None:
        if end < start:
            raise ValueError("span ends before it starts")
        if phase not in PHASE_GLYPHS:
            raise ValueError(f"unknown phase {phase!r}")
        self.spans.append(Span(actor, phase, start, end, picture))

    def actors(self) -> List[str]:
        seen: Dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.actor, None)
        return list(seen)

    def window(self) -> Tuple[float, float]:
        if not self.spans:
            return (0.0, 0.0)
        return (
            min(s.start for s in self.spans),
            max(s.end for s in self.spans),
        )

    def spans_for(self, actor: str) -> List[Span]:
        return [s for s in self.spans if s.actor == actor]

    def phase_totals(self, actor: str) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for s in self.spans_for(actor):
            out[s.phase] = out.get(s.phase, 0.0) + s.duration
        return out


def render_ascii(
    trace: TimelineTrace,
    width: int = 100,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> str:
    """Draw the trace as one text row per actor.

    Each column is a time bucket; the glyph shows the phase that occupied
    most of that bucket for the actor (idle = space).
    """
    lo, hi = trace.window()
    t0 = lo if t0 is None else t0
    t1 = hi if t1 is None else t1
    if t1 <= t0:
        return "(empty trace)"
    dt = (t1 - t0) / width
    rows = []
    label_w = max((len(a) for a in trace.actors()), default=4) + 1
    header = " " * label_w + f"|{'-' * (width - 2)}|  {1e3 * (t1 - t0):.1f} ms"
    rows.append(header)
    for actor in trace.actors():
        buckets = [" "] * width
        occupancy = [0.0] * width
        for s in trace.spans_for(actor):
            if s.end <= t0 or s.start >= t1:
                continue
            b0 = max(0, int((s.start - t0) / dt))
            b1 = min(width - 1, int((s.end - t0) / dt))
            glyph = PHASE_GLYPHS[s.phase]
            for b in range(b0, b1 + 1):
                cover = min(s.end, t0 + (b + 1) * dt) - max(s.start, t0 + b * dt)
                if cover > occupancy[b]:
                    occupancy[b] = cover
                    buckets[b] = glyph
        rows.append(actor.ljust(label_w) + "".join(buckets))
    legend = "  ".join(f"{g}={p}" for p, g in PHASE_GLYPHS.items())
    rows.append("legend: " + legend)
    return "\n".join(rows)
