"""Experiment runners: one function per table/figure of the paper's §5.

Every runner returns plain data structures (lists of dicts) so tests can
assert the paper's qualitative claims on them and benchmarks can print
them as the paper's tables.  The ``n_frames`` defaults trade simulated
length against runtime; results are steady-state frame rates, so 30-60
simulated pictures suffice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.parallel.system import run_system
from repro.perf.costmodel import CostModel
from repro.workloads.streams import TABLE4_STREAMS, StreamSpec, stream_by_id

#: Screen configurations used throughout §5 (m columns x n rows).
SCREEN_CONFIGS: List[Tuple[int, int]] = [
    (1, 1),
    (2, 1),
    (2, 2),
    (3, 2),
    (3, 3),
    (4, 3),
    (4, 4),
]

#: Resolution-matched configuration per stream (§5.5): m, n chosen so the
#: video resolution matches the tiled wall resolution.
TABLE6_CONFIGS: Dict[int, Tuple[int, int]] = {
    1: (1, 1),
    2: (1, 1),
    3: (1, 1),
    4: (1, 1),
    5: (2, 1),
    6: (2, 1),
    7: (2, 1),
    8: (2, 1),
    9: (2, 1),
    10: (2, 2),
    11: (2, 2),
    12: (2, 2),
    13: (3, 2),
    14: (3, 3),
    15: (4, 3),
    16: (4, 4),
}


def choose_k_empirically(
    spec: StreamSpec,
    m: int,
    n: int,
    max_k: int = 6,
    n_frames: int = 24,
    cost: Optional[CostModel] = None,
    improvement: float = 1.03,
) -> int:
    """The paper's method (§5.4): "We determine k by increasing it until
    the overall frame rate stops increasing"."""
    best_fps, best_k = 0.0, 1
    for k in range(1, max_k + 1):
        fps = run_system(spec, m, n, k=k, n_frames=n_frames, cost=cost).fps
        if fps > best_fps * improvement:
            best_fps, best_k = fps, k
        else:
            break
    return best_k


# -------------------------------------------------------------------------- #
# Table 5 / Figure 6 — one-level vs two-level frame rates
# -------------------------------------------------------------------------- #


def table5(
    stream_ids: Sequence[int] = (1, 8),
    n_frames: int = 36,
    cost: Optional[CostModel] = None,
) -> List[dict]:
    """Frame rate of one-level and two-level systems for streams 1 and 8
    over all screen configurations."""
    rows = []
    for sid in stream_ids:
        spec = stream_by_id(sid)
        for m, n in SCREEN_CONFIGS:
            one = run_system(spec, m, n, k=0, n_frames=n_frames, cost=cost)
            k = choose_k_empirically(spec, m, n, cost=cost)
            two = run_system(spec, m, n, k=k, n_frames=n_frames, cost=cost)
            rows.append(
                {
                    "stream": sid,
                    "m": m,
                    "n": n,
                    "one_level_config": one.label,
                    "one_level_nodes": 1 + m * n,
                    "one_level_fps": round(one.fps, 1),
                    "two_level_config": two.label,
                    "two_level_nodes": 1 + k + m * n,
                    "two_level_fps": round(two.fps, 1),
                }
            )
    return rows


def figure6(rows: Optional[List[dict]] = None, **kw) -> Dict[str, List[Tuple[int, float]]]:
    """Figure 6 series: fps vs total nodes, four curves."""
    rows = rows or table5(**kw)
    series: Dict[str, List[Tuple[int, float]]] = {}
    for r in rows:
        series.setdefault(f"stream{r['stream']}-one-level", []).append(
            (r["one_level_nodes"], r["one_level_fps"])
        )
        series.setdefault(f"stream{r['stream']}-two-level", []).append(
            (r["two_level_nodes"], r["two_level_fps"])
        )
    return series


# -------------------------------------------------------------------------- #
# Figure 7 — decoder runtime breakdown
# -------------------------------------------------------------------------- #


def figure7(
    stream_id: int = 8,
    n_frames: int = 36,
    cost: Optional[CostModel] = None,
) -> Dict[str, dict]:
    """Runtime breakdown of each decoder for 2x2 and 4x4 setups."""
    spec = stream_by_id(stream_id)
    out: Dict[str, dict] = {}
    for m, n in ((2, 2), (4, 4)):
        k = choose_k_empirically(spec, m, n, cost=cost)
        res = run_system(spec, m, n, k=k, n_frames=n_frames, cost=cost)
        per_dec = {
            tid: bd.per_frame_ms(n_frames) for tid, bd in res.breakdowns.items()
        }
        mean = res.mean_breakdown()
        out[f"{m}x{n}"] = {
            "config": res.label,
            "fps": round(res.fps, 1),
            "per_decoder_ms": per_dec,
            "average_ms": mean.per_frame_ms(n_frames),
            "average_fractions": mean.fractions(),
        }
    return out


# -------------------------------------------------------------------------- #
# Table 6 / Figure 8 — resolution scalability
# -------------------------------------------------------------------------- #


def table6(
    n_frames: int = 36,
    cost: Optional[CostModel] = None,
    stream_ids: Optional[Sequence[int]] = None,
) -> List[dict]:
    """All 16 streams on resolution-matched configurations."""
    rows = []
    for spec in TABLE4_STREAMS:
        if stream_ids is not None and spec.sid not in stream_ids:
            continue
        m, n = TABLE6_CONFIGS[spec.sid]
        if m * n == 1:
            k = 1
            res = run_system(spec, m, n, k=1, n_frames=n_frames, cost=cost)
        else:
            k = choose_k_empirically(spec, m, n, cost=cost)
            res = run_system(spec, m, n, k=k, n_frames=n_frames, cost=cost)
        rows.append(
            {
                "stream": spec.sid,
                "name": spec.name,
                "resolution": f"{spec.width}x{spec.height}",
                "config": res.label,
                "nodes": 1 + k + m * n,
                "fps": round(res.fps, 1),
                "pixel_rate_mpps": round(res.pixel_rate_mpps, 1),
            }
        )
    return rows


def figure8(rows: Optional[List[dict]] = None, **kw) -> List[Tuple[int, float]]:
    """Figure 8 series: pixel decoding rate vs number of nodes (averaging
    streams that share a configuration, as the paper does)."""
    rows = rows or table6(**kw)
    by_nodes: Dict[int, List[float]] = {}
    for r in rows:
        by_nodes.setdefault(r["nodes"], []).append(r["pixel_rate_mpps"])
    return sorted((nodes, sum(v) / len(v)) for nodes, v in by_nodes.items())


# -------------------------------------------------------------------------- #
# Figure 9 — per-node bandwidth
# -------------------------------------------------------------------------- #


def figure9(
    stream_id: int = 16,
    m: int = 4,
    n: int = 4,
    k: int = 4,
    n_frames: int = 36,
    cost: Optional[CostModel] = None,
) -> dict:
    """Send/receive bandwidth of every node, 1-4-(4,4) on stream 16."""
    spec = stream_by_id(stream_id)
    res = run_system(spec, m, n, k=k, n_frames=n_frames, cost=cost)
    splitters = {
        name: bw for name, bw in res.bandwidth.items() if name.startswith("splitter")
    }
    send = sum(b[0] for b in splitters.values())
    recv = sum(b[1] for b in splitters.values())
    return {
        "config": res.label,
        "fps": round(res.fps, 1),
        "bandwidth_mbps": {
            name: (round(s, 2), round(r, 2)) for name, (s, r) in res.bandwidth.items()
        },
        "splitter_send_over_recv": round(send / recv, 3) if recv else float("nan"),
    }
