"""Arena-style shared-memory slab pool with generation-tagged handles.

One :class:`FramePool` is a single shared-memory segment divided into
fixed-size **slabs** grouped in size classes (small slabs for MEI boundary
blocks, large ones for compiled plans and tile-frame crops).  The process
that *creates* the pool is its **owner** and sole allocator; any process
that *opens* it is a **consumer** that maps slabs read-only-by-convention
and releases leases when done.

Protocol, per payload:

1. the owner calls :meth:`FramePool.alloc` — a free slab of the smallest
   fitting class is claimed, its generation bumped, its refcount set to
   the lease count — and writes the payload into ``lease.buf``;
2. a 24-ish byte :class:`Handle` (pool name, slab index, generation,
   payload size) travels over the socket instead of the payload;
3. the consumer maps the pool (cached by :class:`PoolRegistry`), reads
   straight out of shared memory via :meth:`FramePool.view`, and calls
   :meth:`FramePool.release` — a refcount decrement written directly into
   the segment, so no release backchannel messages exist;
4. the owner reuses any slab whose refcount has returned to zero.

Generation tags catch use-after-release bugs: a handle whose generation no
longer matches the slab header raises :class:`StaleHandle` instead of
silently reading recycled bytes.  Double releases raise
:class:`DoubleRelease`.  When every slab of every fitting class is still
leased, :meth:`alloc` raises :class:`PoolExhausted` and the caller falls
back to the by-value wire encoding — the pool degrades, never deadlocks.

Segments are plain files in ``/dev/shm`` (tmpfs; falls back to the
temp dir elsewhere), created with ``mkstemp``-style exclusivity and
mapped with :mod:`mmap`.  ``multiprocessing.shared_memory`` is *not* used:
on Python < 3.13 its resource tracker registers every attach and unlinks
segments it thinks leaked, which fights the crash-safe ownership rules
here (the supervisor, not a tracker, reaps pools of SIGKILLed workers via
:func:`purge_pools`).  Every file name starts with ``repro-pool-`` so
leak checks can find strays with a single glob.

Crash safety: the owner unlinks its segment in ``destroy()``; if it dies
abruptly, the supervisor purges every segment carrying the run's pool
token.  A consumer crash leaks at most a refcount (slabs stay leased);
the owner's run ends with the supervisor purge either way, so no segment
outlives the run.
"""

from __future__ import annotations

import mmap
import os
import struct
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf.telemetry import registry

#: Every pool file name starts with this; leak checks glob for it.
POOL_PREFIX = "repro-pool-"

_MAGIC = 0x4C4F5052  # "RPOL"
_VERSION = 1

# File header: magic u32 | version u32 | n_slabs u32 | reserved u32
_FILE_HEAD = "<IIII"
_FILE_HEAD_SIZE = struct.calcsize(_FILE_HEAD)

# Per-slab record: offset u64 | size u64 | generation u32 | refcount i32 |
# used u64.  Offset/size are written once at create time; generation/used
# are owner-written at alloc time (only while refcount == 0, so no
# consumer is concurrently touching the slab); refcount is set by the
# owner at alloc and decremented in place by consumers at release.
_SLAB_REC = "<QQIiQ"
_SLAB_REC_SIZE = struct.calcsize(_SLAB_REC)

# Handle wire format: slab u32 | generation u32 | nbytes u64 | name-len u16
# followed by the UTF-8 pool name.
_HANDLE_HEAD = "<IIQH"
_HANDLE_HEAD_SIZE = struct.calcsize(_HANDLE_HEAD)


class PoolError(RuntimeError):
    """Base class for frame-pool failures."""


class PoolExhausted(PoolError):
    """No free slab large enough; caller should fall back to by-value."""


class StaleHandle(PoolError):
    """The handle's generation no longer matches the slab (use-after-free)."""


class DoubleRelease(PoolError):
    """A lease was released more times than it was granted."""


def default_shm_dir() -> Path:
    """``/dev/shm`` when the host has it (Linux tmpfs), else the temp dir.

    Overridable with the ``REPRO_SHM_DIR`` environment variable — tests
    point it at a scratch directory so leak checks cannot race other runs.
    """
    env = os.environ.get("REPRO_SHM_DIR")
    if env:
        return Path(env)
    shm = Path("/dev/shm")
    return shm if shm.is_dir() else Path(tempfile.gettempdir())


def purge_pools(token: str, shm_dir: Optional[Path] = None) -> List[str]:
    """Unlink every pool segment whose name carries ``token``.

    The supervisor's crash-safe teardown: pools are named
    ``repro-pool-<token>-<proc>``, so after the process tree is dead one
    glob reaps everything a SIGKILLed worker left behind.  Returns the
    file names removed (empty on a clean run).
    """
    d = Path(shm_dir) if shm_dir is not None else default_shm_dir()
    removed: List[str] = []
    for path in d.glob(f"{POOL_PREFIX}{token}-*"):
        try:
            path.unlink()
            removed.append(path.name)
        except OSError:
            pass
    return removed


@dataclass(frozen=True)
class Handle:
    """A generation-tagged reference to one leased slab's payload."""

    pool: str  # full file name, including the repro-pool- prefix
    slab: int
    generation: int
    nbytes: int

    def pack(self) -> bytes:
        name = self.pool.encode()
        return (
            struct.pack(
                _HANDLE_HEAD, self.slab, self.generation, self.nbytes, len(name)
            )
            + name
        )

    @staticmethod
    def unpack(buf, offset: int = 0) -> Tuple["Handle", int]:
        slab, gen, nbytes, nlen = struct.unpack_from(_HANDLE_HEAD, buf, offset)
        off = offset + _HANDLE_HEAD_SIZE
        name = bytes(buf[off : off + nlen]).decode()
        return Handle(pool=name, slab=slab, generation=gen, nbytes=nbytes), off + nlen


@dataclass
class Lease:
    """An owner-side claim on one slab: write ``buf``, ship ``handle``."""

    handle: Handle
    buf: memoryview  # writable view of exactly handle.nbytes


@dataclass
class PoolStats:
    """Owner/consumer-side accounting (also mirrored into the metrics
    registry as ``pool.*`` counters for the trace stream)."""

    leases: int = 0
    releases: int = 0
    lease_bytes: int = 0
    exhausted: int = 0
    hwm_slabs: int = 0  # most slabs simultaneously leased (owner side)

    def to_dict(self) -> Dict[str, int]:
        return {
            "leases": self.leases,
            "releases": self.releases,
            "lease_bytes": self.lease_bytes,
            "exhausted": self.exhausted,
            "hwm_slabs": self.hwm_slabs,
        }


class FramePool:
    """One shared-memory segment of slabs; see the module docstring."""

    def __init__(self, path: Path, mm: mmap.mmap, owner: bool):
        self.path = path
        self.name = path.name
        self._mm = mm
        self._owner = owner
        self._closed = False
        self.stats = PoolStats()
        (magic, version, self.n_slabs, _r) = struct.unpack_from(_FILE_HEAD, mm, 0)
        if magic != _MAGIC:
            raise PoolError(f"{self.name}: not a frame pool (magic {magic:#x})")
        if version != _VERSION:
            raise PoolError(f"{self.name}: pool version {version}, expected {_VERSION}")
        # Immutable geometry, read once (owner wrote it before publishing).
        self._offsets: List[int] = []
        self._sizes: List[int] = []
        for s in range(self.n_slabs):
            off, size, _g, _rc, _u = struct.unpack_from(
                _SLAB_REC, mm, self._rec_off(s)
            )
            self._offsets.append(off)
            self._sizes.append(size)
        # Owner's rotating scan cursor so slab reuse spreads writes out.
        self._cursor = 0

    # ------------------------------------------------------------------ #
    # creation / attach
    # ------------------------------------------------------------------ #

    @staticmethod
    def _rec_off(slab: int) -> int:
        return _FILE_HEAD_SIZE + slab * _SLAB_REC_SIZE

    @classmethod
    def create(
        cls,
        name: str,
        classes: Sequence[Tuple[int, int]],
        shm_dir: Optional[Path] = None,
    ) -> "FramePool":
        """Create and own a pool named ``repro-pool-<name>``.

        ``classes`` is ``[(slab_bytes, count), ...]``; slabs are laid out
        class by class.  Allocation picks the smallest class that fits, so
        order the classes small-to-large for best packing (they are sorted
        here regardless).
        """
        classes = sorted((int(b), int(c)) for b, c in classes)
        if not classes or any(b <= 0 or c <= 0 for b, c in classes):
            raise ValueError("need at least one (slab_bytes>0, count>0) class")
        n_slabs = sum(c for _b, c in classes)
        meta = _FILE_HEAD_SIZE + n_slabs * _SLAB_REC_SIZE
        total = meta + sum(b * c for b, c in classes)

        d = Path(shm_dir) if shm_dir is not None else default_shm_dir()
        d.mkdir(parents=True, exist_ok=True)
        path = d / f"{POOL_PREFIX}{name}"
        fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_EXCL, 0o600)
        try:
            # Reserve the blocks up front: a tmpfs with too little room
            # must fail here with ENOSPC (cleanly degradable to by-value),
            # not SIGBUS the first writer of an unbacked page.
            os.ftruncate(fd, total)
            if hasattr(os, "posix_fallocate"):
                try:
                    os.posix_fallocate(fd, 0, total)
                except OSError:
                    path.unlink(missing_ok=True)
                    raise
            mm = mmap.mmap(fd, total)
        finally:
            os.close(fd)
        struct.pack_into(_FILE_HEAD, mm, 0, _MAGIC, _VERSION, n_slabs, 0)
        off = meta
        slab = 0
        for size, count in classes:
            for _ in range(count):
                struct.pack_into(_SLAB_REC, mm, cls._rec_off(slab), off, size, 0, 0, 0)
                off += size
                slab += 1
        return cls(path, mm, owner=True)

    @classmethod
    def open(cls, name_or_path, shm_dir: Optional[Path] = None) -> "FramePool":
        """Attach to an existing pool as a consumer (never unlinks)."""
        p = Path(name_or_path)
        if p.name == str(name_or_path):  # bare name, not a path
            d = Path(shm_dir) if shm_dir is not None else default_shm_dir()
            p = d / p.name
        fd = os.open(p, os.O_RDWR)
        try:
            mm = mmap.mmap(fd, os.fstat(fd).st_size)
        finally:
            os.close(fd)
        return cls(p, mm, owner=False)

    # ------------------------------------------------------------------ #
    # owner side: alloc
    # ------------------------------------------------------------------ #

    def alloc(self, nbytes: int, leases: int = 1) -> Lease:
        """Claim a free slab that fits ``nbytes`` for ``leases`` consumers.

        Raises :class:`PoolExhausted` when every fitting slab is still
        leased — the caller's cue to ship by value instead.
        """
        if not self._owner:
            raise PoolError(f"{self.name}: only the pool owner can allocate")
        if self._closed:
            raise PoolError(f"{self.name}: pool is closed")
        if nbytes <= 0 or leases < 1:
            raise ValueError("alloc needs nbytes > 0 and leases >= 1")
        mm = self._mm
        n = self.n_slabs
        for probe in range(n):
            s = (self._cursor + probe) % n
            if self._sizes[s] < nbytes:
                continue
            _off, _size, gen, refcount, _used = struct.unpack_from(
                _SLAB_REC, mm, self._rec_off(s)
            )
            if refcount != 0:
                continue
            gen = (gen + 1) & 0xFFFFFFFF
            struct.pack_into(
                _SLAB_REC, mm, self._rec_off(s),
                self._offsets[s], self._sizes[s], gen, leases, nbytes,
            )
            self._cursor = (s + 1) % n
            self.stats.leases += 1
            self.stats.lease_bytes += nbytes
            in_use = self.slabs_in_use()
            if in_use > self.stats.hwm_slabs:
                self.stats.hwm_slabs = in_use
            reg = registry()
            reg.counter("pool.leases").inc()
            reg.counter("pool.lease_bytes").inc(nbytes)
            reg.gauge("pool.hwm_slabs").set(self.stats.hwm_slabs)
            handle = Handle(
                pool=self.name, slab=s, generation=gen, nbytes=nbytes
            )
            view = memoryview(mm)[self._offsets[s] : self._offsets[s] + nbytes]
            return Lease(handle=handle, buf=view)
        self.stats.exhausted += 1
        registry().counter("pool.exhausted").inc()
        raise PoolExhausted(
            f"{self.name}: no free slab >= {nbytes} bytes ({n} slabs, all leased)"
        )

    def cancel(self, lease: Lease) -> None:
        """Owner-side unwind of an unsent lease (send failed / fell back)."""
        h = lease.handle
        self._check_generation(h)
        struct.pack_into("<i", self._mm, self._rec_off(h.slab) + 20, 0)
        self.stats.releases += 1

    # ------------------------------------------------------------------ #
    # consumer side: view / release
    # ------------------------------------------------------------------ #

    def _check_generation(self, h: Handle) -> Tuple[int, int]:
        if h.slab < 0 or h.slab >= self.n_slabs:
            raise PoolError(f"{self.name}: slab {h.slab} out of range")
        _off, _size, gen, refcount, used = struct.unpack_from(
            _SLAB_REC, self._mm, self._rec_off(h.slab)
        )
        if gen != h.generation:
            raise StaleHandle(
                f"{self.name}: slab {h.slab} is at generation {gen}, "
                f"handle says {h.generation}"
            )
        return refcount, used

    def view(self, h: Handle) -> memoryview:
        """Zero-copy view of a leased payload (generation-checked)."""
        refcount, used = self._check_generation(h)
        if refcount <= 0:
            raise StaleHandle(f"{self.name}: slab {h.slab} has no active lease")
        if h.nbytes > used:
            raise PoolError(
                f"{self.name}: handle wants {h.nbytes} bytes, slab holds {used}"
            )
        off = self._offsets[h.slab]
        return memoryview(self._mm)[off : off + h.nbytes]

    def release(self, h: Handle) -> None:
        """Return one lease; the slab frees when the count reaches zero."""
        refcount, _used = self._check_generation(h)
        if refcount <= 0:
            raise DoubleRelease(
                f"{self.name}: slab {h.slab} released more times than leased"
            )
        struct.pack_into("<i", self._mm, self._rec_off(h.slab) + 20, refcount - 1)
        self.stats.releases += 1
        registry().counter("pool.releases").inc()

    # ------------------------------------------------------------------ #
    # lifecycle / introspection
    # ------------------------------------------------------------------ #

    def slabs_in_use(self) -> int:
        """How many slabs currently hold an unreleased lease."""
        n = 0
        for s in range(self.n_slabs):
            refcount = struct.unpack_from("<i", self._mm, self._rec_off(s) + 20)[0]
            if refcount > 0:
                n += 1
        return n

    def close(self) -> None:
        """Unmap.  Consumers stop here; owners go on to :meth:`destroy`."""
        if self._closed:
            return
        self._closed = True
        try:
            self._mm.close()
        except BufferError:
            # Outstanding memoryviews pin the mapping.  Leave it mapped —
            # the file can still be unlinked and the map dies with the
            # process; failing teardown over a lingering view would turn a
            # consumer bug into a supervisor crash.
            pass

    def destroy(self) -> None:
        """Owner teardown: unmap and unlink the segment."""
        self.close()
        if self._owner:
            try:
                self.path.unlink()
            except OSError:
                pass

    def __enter__(self) -> "FramePool":
        return self

    def __exit__(self, *exc) -> None:
        self.destroy() if self._owner else self.close()


class PoolRegistry:
    """Consumer-side cache of attached pools, keyed by segment name.

    A decoder receives handles minted by several peers; the registry opens
    each peer's pool on first sight and reuses the mapping after that.
    ``view``/``release`` dispatch on the handle's pool name.
    """

    def __init__(self, shm_dir: Optional[Path] = None):
        self.shm_dir = Path(shm_dir) if shm_dir is not None else default_shm_dir()
        self._pools: Dict[str, FramePool] = {}

    def _pool(self, name: str) -> FramePool:
        pool = self._pools.get(name)
        if pool is None:
            if not name.startswith(POOL_PREFIX):
                raise PoolError(f"refusing to open non-pool segment {name!r}")
            pool = FramePool.open(self.shm_dir / name)
            self._pools[name] = pool
        return pool

    def view(self, h: Handle) -> memoryview:
        return self._pool(h.pool).view(h)

    def release(self, h: Handle) -> None:
        self._pool(h.pool).release(h)

    def close(self) -> None:
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()

    def __enter__(self) -> "PoolRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
