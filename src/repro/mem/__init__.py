"""Shared-memory frame pool: move pixels by handle, not by copy.

The cluster runtime's hot path used to push every plan buffer, reference
block, and tile frame through a stream socket — one copy into the kernel,
one copy out, one ``bytes`` materialization on the receiver.  This package
provides the zero-copy alternative for same-host peers: an arena of
shared-memory slabs the producer writes once and the consumer maps
directly, with only a tiny generation-tagged :class:`Handle` crossing the
socket.

See :mod:`repro.mem.pool` for the allocation/lease protocol and
DESIGN.md §12 for the wire format and lifecycle rules.
"""

from repro.mem.pool import (
    DoubleRelease,
    FramePool,
    Handle,
    Lease,
    PoolError,
    PoolExhausted,
    PoolRegistry,
    StaleHandle,
    default_shm_dir,
    purge_pools,
)

__all__ = [
    "DoubleRelease",
    "FramePool",
    "Handle",
    "Lease",
    "PoolError",
    "PoolExhausted",
    "PoolRegistry",
    "StaleHandle",
    "default_shm_dir",
    "purge_pools",
]
