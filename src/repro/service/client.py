"""Client for the wall service: ``repro submit`` / ``repro sessions``.

A thin, blocking RPC wrapper: resolve the daemon's address from the run
directory (same rendezvous convention as cluster workers), dial with the
transport's retry/backoff policy, then exchange one request frame for
one response frame per call.  Every method returns plain dicts — the
protocol's JSON documents — so the CLI can print them directly and tests
can assert on them.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.net.channel import Address, ChannelTimeout, ConnectPolicy, connect
from repro.service.daemon import SERVICE_NAME
from repro.service.protocol import (
    SVC_REQUEST,
    SVC_RESPONSE,
    VERB_CANCEL,
    VERB_LIST,
    VERB_PING,
    VERB_SHUTDOWN,
    VERB_STATUS,
    VERB_SUBMIT,
    ProtocolError,
    decode_response,
    encode_request,
)
from repro.workloads.streams import StreamSpec


class ServiceError(RuntimeError):
    """The daemon answered ``ok=false``."""


def resolve_service(
    rundir: Path, transport: str = "unix", timeout: float = 10.0
) -> Address:
    """The daemon's address, per the run-directory rendezvous convention."""
    rundir = Path(rundir)
    if transport == "unix":
        return ("unix", str(rundir / f"{SERVICE_NAME}.sock"))
    path = rundir / f"{SERVICE_NAME}.addr"
    deadline = time.monotonic() + timeout
    while not path.exists():
        if time.monotonic() >= deadline:
            raise ChannelTimeout(f"no address published for {SERVICE_NAME!r}")
        time.sleep(0.02)
    host, port = path.read_text().split()
    return ("tcp", host, int(port))


class ServiceClient:
    """One connection to a running wall service."""

    def __init__(
        self,
        rundir: Path,
        transport: str = "unix",
        connect_timeout: float = 10.0,
        request_timeout: float = 60.0,
        heartbeat_interval: float = 0.25,
        policy: Optional[ConnectPolicy] = None,
    ):
        self.request_timeout = request_timeout
        address = resolve_service(rundir, transport, connect_timeout)
        self.channel = connect(
            address,
            timeout=connect_timeout,
            policy=policy or ConnectPolicy(),
            name="svc-client",
        )
        self.channel.start_heartbeat(heartbeat_interval)

    def close(self) -> None:
        self.channel.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def request(
        self, verb: str, fields: Dict[str, Any], blob: bytes = b""
    ) -> Dict[str, Any]:
        """One round-trip; raises :class:`ServiceError` on ``ok=false``."""
        self.channel.send(SVC_REQUEST, encode_request(verb, fields, blob))
        msg = self.channel.recv(timeout=self.request_timeout)
        if msg.type != SVC_RESPONSE:
            raise ProtocolError(f"expected a response frame, got type {msg.type}")
        doc = decode_response(msg.payload)
        if not doc["ok"]:
            raise ServiceError(doc.get("error", "request failed"))
        return doc

    # ------------------------------------------------------------------ #

    def ping(self) -> Dict[str, Any]:
        return self.request(VERB_PING, {})

    def submit(
        self,
        spec: StreamSpec,
        stream: bytes = b"",
        name: Optional[str] = None,
        weight: float = 1.0,
        slowdown_s: float = 0.0,
        n_frames: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Submit a session; returns ``{"sid": ..., "admission": {...}}``
        (no ``sid`` when admission rejected)."""
        fields: Dict[str, Any] = {
            "spec": spec.to_dict(),
            "weight": weight,
            "slowdown_s": slowdown_s,
        }
        if name is not None:
            fields["name"] = name
        if n_frames is not None:
            fields["n_frames"] = n_frames
        return self.request(VERB_SUBMIT, fields, stream)

    def status(self, sid: int) -> Dict[str, Any]:
        return self.request(VERB_STATUS, {"sid": sid})["session"]

    def cancel(self, sid: int, reason: str = "cancelled by client") -> Dict[str, Any]:
        return self.request(VERB_CANCEL, {"sid": sid, "reason": reason})

    def list_sessions(self) -> list:
        return self.request(VERB_LIST, {})["sessions"]

    def shutdown(self, reason: str = "client request") -> Dict[str, Any]:
        return self.request(VERB_SHUTDOWN, {"reason": reason})

    def wait(
        self, sid: int, timeout: float = 120.0, poll: float = 0.1
    ) -> Dict[str, Any]:
        """Poll until the session reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            summary = self.status(sid)
            if summary["state"] in ("completed", "cancelled", "failed"):
                return summary
            if time.monotonic() >= deadline:
                raise ChannelTimeout(
                    f"session {sid} still {summary['state']} after {timeout:.0f}s"
                )
            time.sleep(poll)
