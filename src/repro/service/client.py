"""Client for the wall service: ``repro submit`` / ``repro sessions``.

A thin, blocking RPC wrapper: resolve the daemon's address from the run
directory (same rendezvous convention as cluster workers), dial with the
transport's retry/backoff policy, then exchange one request frame for
one response frame per call.  Every method returns plain dicts — the
protocol's JSON documents — so the CLI can print them directly and tests
can assert on them.
"""

from __future__ import annotations

import random
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.net.channel import (
    Address,
    ChannelError,
    ChannelTimeout,
    ConnectPolicy,
    connect,
)
from repro.net.reliable import dial_reliable
from repro.service.daemon import SERVICE_NAME
from repro.service.protocol import (
    SVC_REQUEST,
    SVC_RESPONSE,
    VERB_CANCEL,
    VERB_DRAIN,
    VERB_LIST,
    VERB_PING,
    VERB_SHUTDOWN,
    VERB_STATS,
    VERB_STATUS,
    VERB_SUBMIT,
    VERB_UNDRAIN,
    ProtocolError,
    decode_response,
    encode_request,
)
from repro.workloads.streams import StreamSpec


class ServiceError(RuntimeError):
    """The daemon answered ``ok=false``."""


def resolve_service(
    rundir: Path, transport: str = "unix", timeout: float = 10.0
) -> Address:
    """The daemon's address, per the run-directory rendezvous convention."""
    rundir = Path(rundir)
    if transport == "unix":
        return ("unix", str(rundir / f"{SERVICE_NAME}.sock"))
    path = rundir / f"{SERVICE_NAME}.addr"
    deadline = time.monotonic() + timeout
    while not path.exists():
        if time.monotonic() >= deadline:
            raise ChannelTimeout(f"no address published for {SERVICE_NAME!r}")
        time.sleep(0.02)
    host, port = path.read_text().split()
    return ("tcp", host, int(port))


class ServiceClient:
    """One connection to a running wall service.

    Transient connection faults (a daemon restarting, a listener briefly
    down, a half-open socket reset under the first write) surface as
    ``ECONNRESET``/``ECONNREFUSED``-class errors; rather than leak raw
    ``OSError`` to callers, :meth:`request` re-resolves the address,
    re-dials, and replays the request up to ``retries`` times with
    exponential backoff and full jitter.  The service protocol is one
    independent round-trip per request over a fresh-or-same connection,
    so a replay is safe for every verb except a ``submit`` whose response
    was lost *after* admission — the one window where a retry can
    double-submit; callers who care pass ``retries=0``.

    With ``reliable=True`` the client speaks the reliable-link layer
    (:mod:`repro.net.reliable`): sequence-numbered frames with
    reconnect-and-resume, so a mid-exchange disconnect replays nothing —
    the link itself retransmits.  That is the mode the fleet gateway uses
    for its daemon links.
    """

    def __init__(
        self,
        rundir: Path,
        transport: str = "unix",
        connect_timeout: float = 10.0,
        request_timeout: float = 60.0,
        heartbeat_interval: float = 0.25,
        policy: Optional[ConnectPolicy] = None,
        retries: int = 3,
        retry_backoff: float = 0.05,
        reliable: bool = False,
        link_resume_timeout: float = 10.0,
    ):
        self.rundir = Path(rundir)
        self.transport = transport
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.heartbeat_interval = heartbeat_interval
        self.policy = policy or ConnectPolicy()
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.reliable = reliable
        self.link_resume_timeout = link_resume_timeout
        self.channel = self._dial()

    def _dial(self):
        address = resolve_service(
            self.rundir, self.transport, self.connect_timeout
        )
        if self.reliable:
            return dial_reliable(
                lambda: connect(
                    resolve_service(
                        self.rundir, self.transport, self.connect_timeout
                    ),
                    timeout=self.connect_timeout,
                    policy=self.policy,
                    name="svc-client",
                ),
                resume_timeout=self.link_resume_timeout,
                heartbeat_interval=self.heartbeat_interval,
                name="svc-client",
            )
        ch = connect(
            address,
            timeout=self.connect_timeout,
            policy=self.policy,
            name="svc-client",
        )
        ch.start_heartbeat(self.heartbeat_interval)
        return ch

    def close(self) -> None:
        self.channel.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def _round_trip(
        self, verb: str, fields: Dict[str, Any], blob: bytes
    ) -> Dict[str, Any]:
        self.channel.send(SVC_REQUEST, encode_request(verb, fields, blob))
        msg = self.channel.recv(timeout=self.request_timeout)
        if msg.type != SVC_RESPONSE:
            raise ProtocolError(f"expected a response frame, got type {msg.type}")
        doc = decode_response(msg.payload)
        if not doc["ok"]:
            raise ServiceError(doc.get("error", "request failed"))
        return doc

    def request(
        self, verb: str, fields: Dict[str, Any], blob: bytes = b""
    ) -> Dict[str, Any]:
        """One round-trip; raises :class:`ServiceError` on ``ok=false``.

        Connection-level faults are retried with backoff (see the class
        docstring); protocol and timeout errors are not.
        """
        attempt = 0
        while True:
            try:
                return self._round_trip(verb, fields, blob)
            except ChannelTimeout:
                raise
            except (ChannelError, OSError) as exc:
                if self.reliable or attempt >= self.retries:
                    raise
                attempt += 1
                delay = self.retry_backoff * (2 ** (attempt - 1))
                time.sleep(delay * random.random())
                try:
                    self.channel.close()
                except Exception:  # noqa: BLE001 - already broken
                    pass
                try:
                    self.channel = self._dial()
                except (ChannelError, OSError):
                    if attempt >= self.retries:
                        raise exc
                    # listener still down: loop pays the next backoff
                    continue

    # ------------------------------------------------------------------ #

    def ping(self) -> Dict[str, Any]:
        return self.request(VERB_PING, {})

    def stats(self, format: Optional[str] = None) -> Dict[str, Any]:
        """Live obs-plane snapshot; ``format="prometheus"`` adds a text
        exposition under the reply's ``text`` key."""
        fields: Dict[str, Any] = {}
        if format is not None:
            fields["format"] = format
        return self.request(VERB_STATS, fields)

    def submit(
        self,
        spec: StreamSpec,
        stream: bytes = b"",
        name: Optional[str] = None,
        weight: float = 1.0,
        slowdown_s: float = 0.0,
        n_frames: Optional[int] = None,
        start_at: int = 0,
        kind: str = "decode",
        wall: Optional[Dict[str, Any]] = None,
        bcast_mode: str = "stream",
        rate_fps: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit a session; returns ``{"sid": ..., "admission": {...}}``
        (no ``sid`` when admission rejected).  ``start_at`` resumes the
        decode at a mid-stream I-picture (failover replay).

        ``kind="broadcast"`` asks the daemon to publish the stream on a
        wall fan-out channel instead of decoding it on the pool; the
        reply carries a ``broadcast`` section with the control address
        receivers subscribe to.  ``wall`` is a
        :class:`~repro.wall.config.WallSpec` dict; ``rate_fps`` paces the
        publish loop (None free-runs).
        """
        fields: Dict[str, Any] = {
            "spec": spec.to_dict(),
            "weight": weight,
            "slowdown_s": slowdown_s,
        }
        if name is not None:
            fields["name"] = name
        if n_frames is not None:
            fields["n_frames"] = n_frames
        if start_at:
            fields["start_at"] = start_at
        if kind != "decode":
            fields["kind"] = kind
            fields["bcast_mode"] = bcast_mode
            if wall is not None:
                fields["wall"] = wall
            if rate_fps is not None:
                fields["rate_fps"] = rate_fps
        return self.request(VERB_SUBMIT, fields, stream)

    def status(self, sid: int) -> Dict[str, Any]:
        return self.request(VERB_STATUS, {"sid": sid})["session"]

    def cancel(self, sid: int, reason: str = "cancelled by client") -> Dict[str, Any]:
        return self.request(VERB_CANCEL, {"sid": sid, "reason": reason})

    def list_sessions(self) -> list:
        return self.request(VERB_LIST, {})["sessions"]

    def shutdown(self, reason: str = "client request") -> Dict[str, Any]:
        return self.request(VERB_SHUTDOWN, {"reason": reason})

    def drain(self, reason: str = "operator request") -> Dict[str, Any]:
        return self.request(VERB_DRAIN, {"reason": reason})

    def undrain(self, reason: str = "operator request") -> Dict[str, Any]:
        return self.request(VERB_UNDRAIN, {"reason": reason})

    def wait(
        self, sid: int, timeout: float = 120.0, poll: float = 0.1
    ) -> Dict[str, Any]:
        """Poll until the session reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            summary = self.status(sid)
            if summary["state"] in ("completed", "cancelled", "failed"):
                return summary
            if time.monotonic() >= deadline:
                raise ChannelTimeout(
                    f"session {sid} still {summary['state']} after {timeout:.0f}s"
                )
            time.sleep(poll)
