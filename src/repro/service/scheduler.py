"""Weighted-fair, work-conserving lease scheduler for the worker pool.

The pool is a fixed set of decode workers; sessions are multiplexed over
it one *picture lease* at a time.  Fairness is stride scheduling on
virtual time: each session carries ``vt``, and completing a lease that
cost ``c`` seconds of worker time advances it by ``c / weight``.  The
next lease always goes to the runnable session with the smallest ``vt``,
so over any window each session receives worker time proportional to its
weight — a weight-2 session decodes twice the pictures of a weight-1
session under contention, and an idle session's backlog never starves
the others (its ``vt`` freezes while it has nothing runnable).

"Runnable" folds in the pacer's gate: a session whose next picture is
not yet inside its decode-ahead window is invisible to the scheduler, so
the pool stays work-conserving — capacity flows to whoever can use it
*now*, and nobody races ahead of their presentation clock.

The scheduler is duck-typed over its sessions (anything with ``vt``,
``weight``, ``in_flight``, ``wants_lease(now)``, ``gate_time()``), so
the fairness unit tests drive it with stubs and a fake clock.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional


class PoolScheduler:
    """Pick-next-lease arbitration between sessions sharing the pool."""

    def __init__(self, now_fn: Callable[[], float] = time.monotonic):
        self._now = now_fn
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._sessions: List = []
        self._closed = False
        self.leases = 0
        self.idle_waits = 0

    # ------------------------------------------------------------------ #

    def add(self, session) -> None:
        with self._cond:
            # late joiners start at the pool's current virtual time, not 0,
            # or one new session would monopolize the pool to "catch up"
            floor = min((s.vt for s in self._sessions), default=0.0)
            session.vt = max(session.vt, floor)
            self._sessions.append(session)
            self._cond.notify_all()

    def remove(self, session) -> None:
        with self._cond:
            if session in self._sessions:
                self._sessions.remove(session)
            self._cond.notify_all()

    def kick(self) -> None:
        """Wake waiters after external state changes (cancel, promote)."""
        with self._cond:
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def sessions(self) -> List:
        with self._lock:
            return list(self._sessions)

    # ------------------------------------------------------------------ #

    def _pick(self, now: float):
        """Min-vt runnable session, or (None, earliest-gate) if none."""
        best = None
        next_gate: Optional[float] = None
        for s in self._sessions:
            if s.wants_lease(now):
                if best is None or (s.vt, s.gate_time()) < (best.vt, best.gate_time()):
                    best = s
            elif not s.in_flight:
                gate = s.gate_time()
                if gate > now and (next_gate is None or gate < next_gate):
                    next_gate = gate
        return best, next_gate

    def next_lease(self, timeout: float = 1.0):
        """Block until a session is runnable; lease its next picture.

        Returns the session with ``in_flight`` set (the caller *must*
        pair it with :meth:`complete`), or ``None`` on timeout/close.
        """
        deadline = self._now() + timeout
        with self._cond:
            while not self._closed:
                now = self._now()
                best, next_gate = self._pick(now)
                if best is not None:
                    best.in_flight = True
                    self.leases += 1
                    return best
                remaining = deadline - now
                if remaining <= 0:
                    self.idle_waits += 1
                    return None
                # sleep until a gate opens, a kick arrives, or we time out
                wait = remaining
                if next_gate is not None:
                    wait = min(wait, max(1e-4, next_gate - now))
                self._cond.wait(timeout=wait)
            return None

    def complete(self, session, cost_s: float) -> None:
        """Return a lease, charging ``cost_s`` of worker time to it."""
        with self._cond:
            session.in_flight = False
            session.vt += max(0.0, cost_s) / session.weight
            self._cond.notify_all()
