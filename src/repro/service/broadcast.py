"""Broadcast sessions: the daemon as a wall publisher.

A ``submit`` with ``kind="broadcast"`` does not join the decode pool at
all — the daemon opens a :class:`~repro.wall.broadcast.WallBroadcaster`
on its own control socket in the run directory and pushes the coded
stream to whoever subscribes.  The session object mirrors just enough of
the decode :class:`~repro.service.session.Session` surface (state
machine, ``summary``/``live_stats``, ``cancel``) for the daemon's verb
table, drain logic, and trace plumbing to treat both kinds uniformly,
while staying out of admission pricing: broadcasting costs one encode
and N socket writes, not pool decode capacity, so it claims no
``demand_mpps`` from the pool view.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.service.session import SessionState
from repro.wall.broadcast import WallBroadcaster
from repro.wall.config import WallSpec


class BroadcastSession:
    """One wall broadcast being served by the daemon.

    Lifecycle: QUEUED at construction, RUNNING once :meth:`start` spawns
    the publisher thread, then COMPLETED (stream fully published),
    CANCELLED (client verb or daemon drain/stop), or FAILED (publisher
    raised).  ``on_finish`` is the daemon's retire hook; it fires exactly
    once, from the publisher thread, after the terminal state is set.
    """

    kind = "broadcast"

    def __init__(
        self,
        sid: int,
        name: str,
        stream: bytes,
        wall: WallSpec,
        control,
        mode: str = "stream",
        rate_fps: Optional[float] = None,
        fps: float = 30.0,
        repair_window: int = 512,
        on_finish=None,
    ):
        self.sid = sid
        self.name = name
        self.rate_fps = rate_fps
        self.state = SessionState.QUEUED
        self.reason = ""
        self.in_flight = False  # never mid-picture on a pool worker
        self.submitted_at = time.time()
        self.started_mono: Optional[float] = None
        self.finished_mono: Optional[float] = None
        self.on_finish = on_finish
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self.broadcaster = WallBroadcaster(
            stream,
            wall,
            control,
            mode=mode,
            fps=fps,
            name=name,
            repair_window=repair_window,
        )

    @property
    def control_address(self):
        return self.broadcaster.control_address

    # ----------------------------- lifecycle -------------------------- #

    def start(self) -> None:
        self.state = SessionState.RUNNING
        self.started_mono = time.monotonic()
        self._thread = threading.Thread(
            target=self._run, name=f"bcast-{self.sid}", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        error = ""
        try:
            self.broadcaster.run(rate_fps=self.rate_fps, stop=self._stop)
        except Exception as exc:  # noqa: BLE001 - report, don't kill the daemon
            error = f"{type(exc).__name__}: {exc}"
        finally:
            with self._lock:
                if self.state is SessionState.RUNNING:
                    if error:
                        self.state = SessionState.FAILED
                        self.reason = error
                    elif self._stop.is_set():
                        self.state = SessionState.CANCELLED
                    else:
                        self.state = SessionState.COMPLETED
                self.finished_mono = time.monotonic()
            self.broadcaster.close()
            if self.on_finish is not None:
                self.on_finish(self)

    def cancel(self, reason: str = "cancelled by client") -> bool:
        with self._lock:
            if self.state in (
                SessionState.COMPLETED,
                SessionState.CANCELLED,
                SessionState.FAILED,
            ):
                return False
            self.state = SessionState.CANCELLED
            self.reason = reason
        self._stop.set()
        # A QUEUED session has no publisher thread to observe the stop
        # event; close the sender here so subscribers see EOF.
        if self._thread is None:
            self.broadcaster.close()
        return True

    def join(self, timeout: float = 30.0) -> None:
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    # ----------------------------- inspection ------------------------- #

    def playout_remaining_s(self) -> float:
        bc = self.broadcaster
        left = len(bc.pictures) - max(bc.stats()["cursor"], 0)
        fps = self.rate_fps or bc.fps or 30.0
        return left / fps

    def receiver_reports(self) -> List[Dict]:
        return self.broadcaster.receiver_reports()

    def summary(self) -> Dict:
        s = self.broadcaster.stats()
        dur = None
        if self.started_mono is not None:
            end = self.finished_mono or time.monotonic()
            dur = round(end - self.started_mono, 6)
        return {
            "sid": self.sid,
            "name": self.name,
            "kind": self.kind,
            "state": self.state.value,
            "reason": self.reason,
            "pictures": s["n_pictures"],
            "processed": s["cursor"] + 1,
            "anchors": s["anchors"],
            "subscribers": s["subscribers"],
            "encodes": s["encodes"],
            "fanout_sends": s["fanout_sends"],
            "fanout_bytes": s["fanout_bytes"],
            "repairs": s["repairs"],
            "gaps": s["gaps"],
            "duration_s": dur,
        }

    def live_stats(self, now: Optional[float] = None) -> Dict:
        s = self.summary()
        s["receivers"] = self.receiver_reports()
        return s


def broadcast_control_address(rundir: Path, sid: int, transport: str):
    """Where a daemon-owned broadcast binds its control socket."""
    if transport == "unix":
        return ("unix", str(Path(rundir) / f"bcast-{sid}.sock"))
    return ("tcp", "127.0.0.1", 0)
