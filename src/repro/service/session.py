"""Session state and the incremental, drop-capable decode engine.

A :class:`Session` is one admitted stream: its spec, its pacer, its
counters, and a :class:`PacedStreamDecoder` that decodes the stream one
coded picture at a time so the scheduler can interleave many sessions on
one worker pool and the pacer can skip pictures.

Skipping is **reference-safe**: dropping a B-picture touches nothing
(no picture predicts from a B); dropping a P-picture poisons the
prediction chain, so the decoder marks the GOP *broken* and force-drops
every later non-I picture of that GOP even if the ladder has recovered —
a degraded wall shows a held frame, never corrupted pixels.  I-pictures
re-anchor the chain and are never dropped.

The decoder reuses the real machinery (:class:`PictureScanner`,
:class:`MacroblockParser`, :func:`reconstruct_picture`) — a session's
output frames are bit-identical to the sequential decoder's whenever
nothing was dropped, which the service tests assert.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.bitstream import BitReader
from repro.mpeg2.constants import PICTURE_START_CODE, PictureType
from repro.mpeg2.decoder import reconstruct_picture
from repro.mpeg2.frames import Frame
from repro.mpeg2.parser import MacroblockParser, PictureScanner
from repro.mpeg2.structures import PictureHeader
from repro.obs.slo import SLOConfig, SLOTracker
from repro.perf.metrics import families
from repro.perf.telemetry import Histogram
from repro.service.pacer import LEVEL_NAMES, LadderConfig, SessionPacer
from repro.workloads.streams import StreamSpec


def peek_picture_type(data: bytes) -> PictureType:
    """Read a picture unit's coding type from its header — no VLC work."""
    br = BitReader(data)
    code = br.next_start_code()
    if code != PICTURE_START_CODE:
        raise ValueError("picture unit does not start with a picture start code")
    return PictureHeader.parse(br).picture_type


@dataclass(frozen=True)
class PictureMeta:
    """Drop-decision inputs for one coded picture, computed up front."""

    ptype: PictureType
    gop_pos: int  # coded position within its GOP
    gop_size: int  # coded pictures in that GOP


@dataclass
class StepResult:
    """What one decode step did."""

    index: int
    ptype: PictureType
    decoded: bool
    forced: bool = False  # dropped because the reference chain was broken
    frame: Optional[Frame] = None  # display-order output, when one emerged


class PacedStreamDecoder:
    """Decode a stream picture-by-picture with reference-safe drops.

    ``start_at`` resumes decode at a mid-stream coded picture: the fleet
    gateway's failover replays a session to a new daemon from the next
    I-picture after the old daemon's last progress point.  Resumption
    must land on an I-picture — only a keyframe re-anchors the reference
    chain, so starting anywhere else could never be bit-identical to a
    clean decode from the same point.
    """

    def __init__(
        self, stream: bytes, batch_reconstruct: bool = True, start_at: int = 0
    ):
        self.sequence, self.pictures = PictureScanner(stream).scan()
        self.parser = MacroblockParser(self.sequence)
        self.batch_reconstruct = batch_reconstruct
        self.meta: List[PictureMeta] = self._scan_meta()
        if start_at and not 0 <= start_at < len(self.pictures):
            raise ValueError(
                f"start_at {start_at} out of range "
                f"(stream has {len(self.pictures)} pictures)"
            )
        if start_at and self.meta[start_at].ptype != PictureType.I:
            raise ValueError(
                f"can only resume at an I-picture; picture {start_at} is "
                f"{self.meta[start_at].ptype.name}"
            )
        self.start_at = start_at
        self._held: Optional[Frame] = None
        self._prev_anchor: Optional[Frame] = None
        self._broken = False
        self.next_index = start_at

    def _scan_meta(self) -> List[PictureMeta]:
        """Peek every picture's type and GOP position (header-only parse)."""
        metas: List[PictureMeta] = []
        starts: List[int] = []
        for i, unit in enumerate(self.pictures):
            if unit.new_gop or i == 0:
                starts.append(i)
        starts.append(len(self.pictures))
        bounds = {}
        for s, e in zip(starts, starts[1:]):
            for i in range(s, e):
                bounds[i] = (i - s, e - s)
        for i, unit in enumerate(self.pictures):
            pos, size = bounds[i]
            metas.append(
                PictureMeta(
                    ptype=peek_picture_type(unit.data), gop_pos=pos, gop_size=size
                )
            )
        return metas

    @property
    def n_pictures(self) -> int:
        return len(self.pictures)

    @property
    def done(self) -> bool:
        return self.next_index >= len(self.pictures)

    def step(self, drop: bool) -> StepResult:
        """Process the next coded picture; ``drop`` is the pacer's wish."""
        i = self.next_index
        meta = self.meta[i]
        self.next_index += 1
        ptype = meta.ptype

        if ptype == PictureType.I:
            self._broken = False  # keyframes re-anchor a poisoned chain
        forced = not drop and self._broken and ptype != PictureType.I
        if drop and ptype == PictureType.I:
            raise ValueError("the ladder never drops I-pictures")

        if drop or forced:
            if ptype == PictureType.P:
                self._broken = True
            return StepResult(index=i, ptype=ptype, decoded=False, forced=forced)

        parsed = self.parser.parse_picture(self.pictures[i].data)
        if ptype == PictureType.B:
            frame = reconstruct_picture(
                parsed,
                self.sequence,
                self._prev_anchor,
                self._held,
                batch=self.batch_reconstruct,
            )
            return StepResult(index=i, ptype=ptype, decoded=True, frame=frame)
        fwd = self._held if ptype == PictureType.P else None
        frame = reconstruct_picture(
            parsed, self.sequence, fwd, None, batch=self.batch_reconstruct
        )
        out = self._held
        self._prev_anchor = self._held
        self._held = frame
        return StepResult(index=i, ptype=ptype, decoded=True, frame=out)

    def flush(self) -> Optional[Frame]:
        """The final held anchor, once every picture has been stepped."""
        out, self._held = self._held, None
        return out


def i_picture_indices(stream: bytes) -> List[int]:
    """Coded indices of every I-picture — the resumable points of a stream.

    The gateway computes this once per submitted session (header-only
    parse, no VLC work) so failover can pick the next anchor without the
    stream in hand at failure time.
    """
    _seq, pictures = PictureScanner(stream).scan()
    return [
        i
        for i, unit in enumerate(pictures)
        if peek_picture_type(unit.data) == PictureType.I
    ]


def clean_decode_digest(stream: bytes, start_at: int = 0) -> str:
    """SHA-256 over the display-order output of an undropped decode
    starting at coded picture ``start_at`` (an I-picture).

    This is the failover acceptance oracle: a session resumed on another
    daemon at ``start_at`` must report exactly this digest — the resumed
    output is bit-identical to a clean decode from that anchor onward.
    """
    dec = PacedStreamDecoder(stream, start_at=start_at)
    h = hashlib.sha256()
    while not dec.done:
        res = dec.step(drop=False)
        if res.frame is not None:
            _digest_frame(h, res.frame)
    tail = dec.flush()
    if tail is not None:
        _digest_frame(h, tail)
    return h.hexdigest()


def _digest_frame(h, frame: Frame) -> None:
    h.update(frame.y.tobytes())
    h.update(frame.cb.tobytes())
    h.update(frame.cr.tobytes())


# --------------------------------------------------------------------- #
# session
# --------------------------------------------------------------------- #


class SessionState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    FAILED = "failed"


#: Latency histogram bounds: 0.1 ms .. ~30 s, geometric.
_LATENCY_BOUNDS = tuple(1e-4 * (10 ** (i / 4)) for i in range(22))


@dataclass
class SessionCounters:
    """Every number the session accounts; feeds ``session_summary``."""

    decoded: Dict[str, int] = field(
        default_factory=lambda: {"I": 0, "P": 0, "B": 0}
    )
    dropped_b: int = 0
    dropped_p: int = 0
    forced_drops: int = 0  # subset of the above: reference-chain casualties
    late_frames: int = 0  # decoded but past their presentation deadline
    released: int = 0  # display slots served (decoded frames shipped)
    # drops attributed to the ladder rung that shed them (obs plane)
    drops_by_rung: Dict[str, int] = field(default_factory=dict)

    @property
    def total_decoded(self) -> int:
        return sum(self.decoded.values())

    @property
    def total_dropped(self) -> int:
        return self.dropped_b + self.dropped_p


class Session:
    """One admitted stream working its way through the pool."""

    kind = "decode"  # vs. service.broadcast.BroadcastSession

    def __init__(
        self,
        sid: int,
        name: str,
        spec: StreamSpec,
        stream: bytes,
        weight: float = 1.0,
        slowdown_s: float = 0.0,
        ladder: LadderConfig = LadderConfig(),
        batch_reconstruct: bool = True,
        start_at: int = 0,
        slo: Optional[SLOConfig] = None,
    ):
        if weight <= 0:
            raise ValueError("session weight must be positive")
        self.sid = sid
        self.name = name
        self.spec = spec
        self.stream = stream
        self.weight = weight
        self.slowdown_s = slowdown_s
        self.batch_reconstruct = batch_reconstruct
        self.start_at = start_at  # failover resume point (an I-picture)
        self.state = SessionState.QUEUED
        self.reason = ""
        self.pacer = SessionPacer(spec.fps, ladder, start_index=start_at)
        self.counters = SessionCounters()
        self._digest = hashlib.sha256()  # over every released frame, in order
        self.latency = Histogram(_LATENCY_BOUNDS)
        self.slo = SLOTracker(slo or SLOConfig())
        self._slo_alerting = False  # edge-triggered slo_burn emission
        self.decoder: Optional[PacedStreamDecoder] = None
        self.submitted_at = time.time()
        self.started_mono: Optional[float] = None
        self.finished_mono: Optional[float] = None
        # scheduler bookkeeping
        self.vt = 0.0  # weight-scaled virtual time (stride scheduling)
        self.in_flight = False
        self._lock = threading.Lock()

    # ----------------------------- scheduling ------------------------- #

    def wants_lease(self, now: float) -> bool:
        """Runnable right now: active, not leased, next picture gated open."""
        if self.state is not SessionState.RUNNING or self.in_flight:
            return False
        if self.decoder is not None and self.decoder.done:
            return False
        return self.gate_time() <= now

    def gate_time(self) -> float:
        """Earliest instant the next picture may start (pacer gate)."""
        if self.decoder is None or not self.pacer.started:
            return 0.0
        return self.pacer.gate_time(self.decoder.next_index)

    # ----------------------------- lifecycle -------------------------- #

    def start(self, now: float) -> None:
        """Admission → running: open the decoder and start the clock."""
        self.decoder = PacedStreamDecoder(
            self.stream,
            batch_reconstruct=self.batch_reconstruct,
            start_at=self.start_at,
        )
        self.pacer.start(now)
        self.state = SessionState.RUNNING
        self.started_mono = now

    def cancel(self, reason: str = "cancelled by client") -> bool:
        with self._lock:
            if self.state in (
                SessionState.COMPLETED,
                SessionState.CANCELLED,
                SessionState.FAILED,
            ):
                return False
            self.state = SessionState.CANCELLED
            self.reason = reason
            return True

    def finish(self, state: SessionState, reason: str = "") -> None:
        with self._lock:
            if self.state in (SessionState.CANCELLED, SessionState.FAILED):
                pass  # terminal states win over a racing completion
            else:
                self.state = state
            if reason:
                self.reason = reason
            self.finished_mono = time.monotonic()

    # ----------------------------- execution -------------------------- #

    def run_one(self, tracer=None, now_fn=time.monotonic) -> StepResult:
        """Decode or drop the next picture.  Runs on a pool worker under a
        scheduler lease; emits per-picture spans and drop events."""
        assert self.decoder is not None
        i = self.decoder.next_index
        meta = self.decoder.meta[i]
        now = now_fn()
        drop, level = self.pacer.decide(
            i, meta.ptype, meta.gop_pos, meta.gop_size, now
        )
        gate = self.pacer.gate_time(i)
        if drop:
            res = self.decoder.step(drop=True)
        else:
            span = (
                tracer.span("decode", picture=i, sid=self.sid)
                if tracer is not None
                else _NULL
            )
            with span:
                res = self.decoder.step(drop=False)
                if res.decoded and self.slowdown_s > 0:
                    # documented load-generation knob: simulates a heavier
                    # codec so tests/benchmarks oversubscribe deterministically
                    time.sleep(self.slowdown_s)
        done = now_fn()
        late = False
        if res.decoded:
            self.latency.observe(max(0.0, done - gate))
            if done > self.pacer.deadline(i):
                self.counters.late_frames += 1
                late = True
            self.counters.decoded[res.ptype.name] += 1
            if res.frame is not None:
                self.counters.released += 1
                _digest_frame(self._digest, res.frame)
        else:
            if res.ptype == PictureType.B:
                self.counters.dropped_b += 1
            else:
                self.counters.dropped_p += 1
            if res.forced:
                self.counters.forced_drops += 1
            rung = LEVEL_NAMES[level] if 0 <= level < len(LEVEL_NAMES) else "?"
            self.counters.drops_by_rung[rung] = (
                self.counters.drops_by_rung.get(rung, 0) + 1
            )
            families().counter(
                "repro_pacer_drops_total",
                "pictures shed by the degradation ladder, per rung",
                labelnames=("rung",),
            ).inc(rung=rung)
            if tracer is not None:
                tracer.emit(
                    "drop",
                    picture=i,
                    sid=self.sid,
                    ptype=res.ptype.name,
                    level=level,
                    forced=res.forced,
                )
        self._record_slo(done, late=late, dropped=not res.decoded,
                         picture=i, tracer=tracer)
        if self.decoder.done:
            tail = self.decoder.flush()
            if tail is not None:
                self.counters.released += 1
                _digest_frame(self._digest, tail)
        return res

    def _record_slo(
        self, now: float, late: bool, dropped: bool, picture: int, tracer
    ) -> None:
        """Feed the burn-rate tracker; emit ``slo_burn`` on alert edges.

        The alert is edge-triggered with hysteresis (re-arms at half the
        alert threshold), so a session pinned above its budget writes one
        event when the burn starts, not one per picture.
        """
        self.slo.record(now, late=late, dropped=dropped)
        if self.slo.should_alert(now):
            if not self._slo_alerting:
                self._slo_alerting = True
                if tracer is not None and getattr(tracer, "spans", True):
                    d = self.slo.to_dict(now)
                    tracer.emit(
                        "slo_burn",
                        picture=picture,
                        sid=self.sid,
                        burn=d["worst_burn"],
                        burns=d["burns"],
                        windows_s=d["windows_s"],
                    )
        elif self.slo.worst_burn(now) < 0.5 * self.slo.config.burn_alert:
            self._slo_alerting = False

    # ----------------------------- reporting -------------------------- #

    @property
    def progress(self) -> float:
        if self.decoder is None or self.decoder.n_pictures == 0:
            return 0.0
        return self.decoder.next_index / self.decoder.n_pictures

    def playout_remaining_s(self) -> float:
        """Presentation time left — admission's retry-after estimate."""
        if self.decoder is None:
            return self.spec.n_frames / self.spec.fps
        left = self.decoder.n_pictures - self.decoder.next_index
        return left / self.spec.fps

    def summary(self) -> Dict:
        c = self.counters
        lat = self.latency.to_dict()
        dur = None
        if self.started_mono is not None:
            end = self.finished_mono or time.monotonic()
            dur = round(end - self.started_mono, 6)
        return {
            "sid": self.sid,
            "name": self.name,
            "state": self.state.value,
            "reason": self.reason,
            "weight": self.weight,
            "start_at": self.start_at,
            "output_digest": self._digest.hexdigest(),
            "demand_mpps": round(self.spec.demand_mpps, 4),
            "pictures": self.decoder.n_pictures if self.decoder else 0,
            "processed": self.decoder.next_index if self.decoder else 0,
            "decoded": dict(c.decoded),
            "released": c.released,
            "dropped_b": c.dropped_b,
            "dropped_p": c.dropped_p,
            "forced_drops": c.forced_drops,
            "late_frames": c.late_frames,
            "drops_by_rung": dict(c.drops_by_rung),
            "peak_degrade_level": self.pacer.ladder.peak_level,
            "degrade_transitions": self.pacer.ladder.transitions,
            "latency_p50_ms": round(1e3 * self.latency.percentile(50), 3),
            "latency_p95_ms": round(1e3 * self.latency.percentile(95), 3),
            "latency_p99_ms": round(1e3 * self.latency.percentile(99), 3),
            "latency_count": lat.get("count", 0),
            "duration_s": dur,
        }

    def live_stats(self, now: Optional[float] = None) -> Dict:
        """The ``VERB_STATS`` per-session row: summary plus live rates.

        ``now`` is on the session's monotonic clock (the pacer's time
        base); it defaults to the current instant.
        """
        now = time.monotonic() if now is None else now
        s = self.summary()
        dur = s.get("duration_s") or 0.0
        s["fps"] = round(self.counters.released / dur, 3) if dur > 0 else 0.0
        s["level"] = self.pacer.ladder.level
        s["slo"] = self.slo.to_dict(now)
        s["progress"] = round(self.progress, 4)
        return s


class _NullCtx:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        pass


_NULL = _NullCtx()
