"""Admission control: accept, queue, or reject a decode session.

Three deterministic inputs drive every decision:

1. the session's **pixel-rate demand** (``StreamSpec.demand_mpps`` —
   width x height x fps), checked against the pool's configured decode
   capacity and the demand of the sessions already admitted;
2. the stream's **VBV model** — the spec's per-picture-type coded sizes
   replayed through :func:`repro.mpeg2.vbv.simulate_vbv` at the nominal
   channel rate, so a stream whose I-pictures cannot fit the configured
   buffer is refused up front instead of stalling the wall mid-play
   (the bandwidth-characterization rationale of arXiv:0906.4607);
3. the **backlog** — a bounded queue absorbs short bursts; past it the
   service sheds load explicitly rather than thrashing.

Every decision is a structured :class:`AdmissionDecision` with a
machine-readable ``reason`` and, for non-accepts, a suggested
``retry_after_s`` — clients can implement honest backoff without parsing
prose.  The controller is pure (no clock, no I/O): identical inputs give
identical decisions, which is what the oversubscription tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.mpeg2.vbv import plan_initial_fill, simulate_vbv
from repro.workloads.streams import StreamSpec

# Machine-readable decision reasons (the protocol's vocabulary).
OK = "ok"
QUEUED_CAPACITY = "queued-capacity"
REJECT_OVERSIZE = "reject-oversize"
REJECT_QUEUE_FULL = "reject-queue-full"
REJECT_VBV = "reject-vbv"
REJECT_BAD_SPEC = "reject-bad-spec"
REJECT_DRAINING = "reject-draining"  # administrative drain, not a capacity fact


@dataclass(frozen=True)
class PoolView:
    """What admission sees of the pool at decision time."""

    active_demand_mpps: float = 0.0  # sum of admitted sessions' demand
    queued: int = 0  # sessions already waiting
    soonest_finish_s: Optional[float] = None  # earliest expected free-up


@dataclass(frozen=True)
class AdmissionDecision:
    """The structured answer every submit gets."""

    action: str  # "accept" | "queue" | "reject"
    reason: str
    detail: str = ""
    retry_after_s: Optional[float] = None
    demand_mpps: float = 0.0
    utilization: float = 0.0  # pool utilization *after* this session
    vbv: Dict[str, float] = field(default_factory=dict)

    @property
    def accepted(self) -> bool:
        return self.action == "accept"

    def to_dict(self) -> Dict:
        out = {
            "action": self.action,
            "reason": self.reason,
            "detail": self.detail,
            "demand_mpps": round(self.demand_mpps, 4),
            "utilization": round(self.utilization, 4),
            "vbv": self.vbv,
        }
        if self.retry_after_s is not None:
            out["retry_after_s"] = round(self.retry_after_s, 3)
        return out


#: ISO 13818-2 level VBV buffer sizes (Table 8-13, in bits).
VBV_MAIN_LEVEL = 1_835_008  # MP@ML, <= 720x576
VBV_HIGH_1440 = 7_340_032  # High-1440, <= 1440x1152
VBV_HIGH_LEVEL = 9_781_248  # MP@HL, everything above


def vbv_buffer_for(spec: StreamSpec) -> int:
    """The level-appropriate VBV buffer for a stream's raster."""
    if spec.width <= 720 and spec.height <= 576:
        return VBV_MAIN_LEVEL
    if spec.width <= 1440 and spec.height <= 1152:
        return VBV_HIGH_1440
    return VBV_HIGH_LEVEL


class AdmissionController:
    """Pure decision function over (spec, pool state)."""

    def __init__(
        self,
        capacity_mpps: float,
        queue_slots: int = 4,
        vbv_buffer_bits: Optional[int] = None,  # None: per-spec ISO level
        vbv_initial_delay: Optional[float] = None,  # None: planner picks it
    ):
        if capacity_mpps <= 0:
            raise ValueError("pool capacity must be positive")
        self.capacity_mpps = capacity_mpps
        self.queue_slots = queue_slots
        self.vbv_buffer_bits = vbv_buffer_bits
        self.vbv_initial_delay = vbv_initial_delay

    # ------------------------------------------------------------------ #

    def _vbv_check(self, spec: StreamSpec) -> Dict[str, float]:
        """Replay the spec's modeled picture sizes through the VBV.

        The encoder owns ``vbv_delay``, so by default conformance means
        *some* startup fill works (:func:`plan_initial_fill`); a stream is
        only refused when no fill can avoid underflow/overflow — e.g. an
        I-picture bigger than the level's whole buffer.  A fixed
        ``vbv_initial_delay`` pins the fill instead (the stricter check
        the admission unit tests exercise).
        """
        buffer_bits = (
            self.vbv_buffer_bits
            if self.vbv_buffer_bits is not None
            else vbv_buffer_for(spec)
        )
        types = spec.picture_types()
        sizes = [int(8 * spec.picture_bytes(t)) for t in types]
        bit_rate = spec.bit_rate_mbps * 1e6
        if self.vbv_initial_delay is not None:
            delay = self.vbv_initial_delay
        else:
            fill = plan_initial_fill(
                sizes, bit_rate, spec.fps, buffer_bits=buffer_bits
            )
            if fill is None:
                # no feasible vbv_delay at all: report the least-bad fill
                delay = buffer_bits / bit_rate
            else:
                delay = fill / bit_rate
        res = simulate_vbv(
            sizes,
            bit_rate=bit_rate,
            fps=spec.fps,
            buffer_bits=buffer_bits,
            initial_delay=delay,
        )
        return {
            "underflows": len(res.underflows),
            "overflows": len(res.overflows),
            "peak_occupancy_bits": round(res.peak_occupancy),
            "buffer_bits": buffer_bits,
            "initial_delay_s": round(delay, 4),
        }

    def export_state(self, pool: PoolView) -> Dict[str, float]:
        """The live admission state a fleet gateway places against.

        Everything a capacity-aware placement policy needs, in one JSON
        document: the configured capacity, what is already spoken for,
        and how much queue absorbency remains.  ``headroom_mpps`` is the
        demand a new session may add and still be *accepted* (not
        queued) — the gateway's primary placement signal.
        """
        return {
            "capacity_mpps": self.capacity_mpps,
            "active_demand_mpps": round(pool.active_demand_mpps, 4),
            "headroom_mpps": round(
                max(0.0, self.capacity_mpps - pool.active_demand_mpps), 4
            ),
            "queued": pool.queued,
            "queue_slots": self.queue_slots,
            "queue_free": max(0, self.queue_slots - pool.queued),
        }

    def evaluate(self, spec: StreamSpec, pool: PoolView) -> AdmissionDecision:
        """Decide for one submission against the current pool state."""
        if spec.width <= 0 or spec.height <= 0 or spec.fps <= 0 or spec.bpp <= 0:
            return AdmissionDecision(
                action="reject",
                reason=REJECT_BAD_SPEC,
                detail="width/height/fps/bpp must all be positive",
            )
        demand = spec.demand_mpps
        retry = pool.soonest_finish_s if pool.soonest_finish_s is not None else 1.0

        if demand > self.capacity_mpps:
            # No amount of waiting helps: the stream alone exceeds the pool.
            return AdmissionDecision(
                action="reject",
                reason=REJECT_OVERSIZE,
                detail=(
                    f"stream needs {demand:.2f} Mpixel/s, pool capacity is "
                    f"{self.capacity_mpps:.2f}"
                ),
                demand_mpps=demand,
                utilization=(pool.active_demand_mpps + demand) / self.capacity_mpps,
            )

        vbv = self._vbv_check(spec)
        if vbv["underflows"] or vbv["overflows"]:
            return AdmissionDecision(
                action="reject",
                reason=REJECT_VBV,
                detail=(
                    f"VBV model fails at {spec.bit_rate_mbps:.1f} Mb/s with a "
                    f"{vbv['buffer_bits']} bit buffer: "
                    f"{vbv['underflows']} underflow(s), "
                    f"{vbv['overflows']} overflow(s)"
                ),
                demand_mpps=demand,
                vbv=vbv,
            )

        utilization = (pool.active_demand_mpps + demand) / self.capacity_mpps
        if utilization <= 1.0:
            return AdmissionDecision(
                action="accept",
                reason=OK,
                demand_mpps=demand,
                utilization=utilization,
                vbv=vbv,
            )
        if pool.queued < self.queue_slots:
            return AdmissionDecision(
                action="queue",
                reason=QUEUED_CAPACITY,
                detail=(
                    f"pool at {pool.active_demand_mpps / self.capacity_mpps:.0%}, "
                    f"queued behind {pool.queued} session(s)"
                ),
                retry_after_s=retry,
                demand_mpps=demand,
                utilization=utilization,
                vbv=vbv,
            )
        return AdmissionDecision(
            action="reject",
            reason=REJECT_QUEUE_FULL,
            detail=f"backlog full ({pool.queued}/{self.queue_slots} slots)",
            retry_after_s=retry,
            demand_mpps=demand,
            utilization=utilization,
            vbv=vbv,
        )
