"""Wall service: a long-lived multi-session streaming decode server.

Everything below :mod:`repro.parallel` and :mod:`repro.cluster` is
batch-shaped — one bitstream in, decode at maximum speed, exit.  The wall
the paper feeds is *live*: many streams arrive concurrently, each must be
presented on its own clock, and the pool's decode capacity is finite.
This package is that serving layer:

- :mod:`repro.service.protocol` — the versioned, no-pickle request/
  response codec clients speak over the cluster's socket transport;
- :mod:`repro.service.admission` — the admission controller: per-stream
  bit-rate/VBV models plus live pool utilization decide accept / queue /
  reject, with a structured machine-readable reason;
- :mod:`repro.service.scheduler` — the weighted-fair, work-conserving
  lease scheduler multiplexing sessions over a fixed worker pool;
- :mod:`repro.service.pacer` — the per-session real-time pacer and the
  graceful-degradation ladder (skip B → skip P-tails → keyframes only);
- :mod:`repro.service.session` — session state and the incremental
  decoder that drops pictures reference-safely;
- :mod:`repro.service.daemon` — the ``repro serve`` daemon;
- :mod:`repro.service.client` — the ``repro submit`` / ``repro sessions``
  client.
"""

from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceConfig, WallService
from repro.service.pacer import DegradationLadder, LadderConfig, SessionPacer
from repro.service.scheduler import PoolScheduler
from repro.service.session import Session, SessionState

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "DegradationLadder",
    "LadderConfig",
    "PoolScheduler",
    "ServiceClient",
    "ServiceConfig",
    "Session",
    "SessionPacer",
    "SessionState",
    "WallService",
]
