"""Versioned request/response codec for the wall service.

Requests and responses travel as single frames on the cluster's
length-prefixed socket transport (:mod:`repro.net.channel`).  Framing
inside the payload follows the no-pickle style of
:mod:`repro.mpeg2.plan_codec`: a fixed struct header, a JSON control
document, then an opaque binary tail (the submitted bitstream) appended
raw — never pickled, because service clients are *not* processes this
package spawned itself.

Payload layout (little-endian)::

    version   u16   PROTOCOL_VERSION
    json_len  u32   length of the UTF-8 JSON document
    json      ...   control fields ("verb" for requests, "ok" for responses)
    blob      ...   remaining bytes, opaque binary (may be empty)

A version mismatch raises :class:`ProtocolVersionError` on the receiving
side before any field is interpreted, so old clients fail with a clear
error instead of a key error deep in a handler.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Tuple

PROTOCOL_VERSION = 1

#: Channel message types (application numbering starts at 1 per channel;
#: the service has its own listener, but stay clear of the cluster range).
SVC_REQUEST = 32
SVC_RESPONSE = 33

#: Request verbs — the session-manager surface.
VERB_SUBMIT = "submit"
VERB_STATUS = "status"
VERB_CANCEL = "cancel"
VERB_LIST = "list"
VERB_PING = "ping"
VERB_SHUTDOWN = "shutdown"
#: Administrative drain (the fleet gateway's verb): stop accepting new
#: sessions, let running ones finish.  ``undrain`` reopens admission.
VERB_DRAIN = "drain"
VERB_UNDRAIN = "undrain"
#: Live observability scrape: the process's metric/SLO snapshot (JSON;
#: add ``{"format": "prometheus"}`` for a text exposition alongside).
VERB_STATS = "stats"

KNOWN_VERBS = (
    VERB_SUBMIT,
    VERB_STATUS,
    VERB_CANCEL,
    VERB_LIST,
    VERB_PING,
    VERB_SHUTDOWN,
    VERB_DRAIN,
    VERB_UNDRAIN,
    VERB_STATS,
)

_HEAD = "<HI"
_HEAD_SIZE = struct.calcsize(_HEAD)


class ProtocolError(RuntimeError):
    """Malformed service payload."""


class ProtocolVersionError(ProtocolError):
    """The peer speaks a different protocol version."""


def _encode(doc: Dict[str, Any], blob: bytes = b"") -> bytes:
    body = json.dumps(doc, sort_keys=True).encode("utf-8")
    return struct.pack(_HEAD, PROTOCOL_VERSION, len(body)) + body + blob


def _decode(payload: bytes) -> Tuple[Dict[str, Any], bytes]:
    if len(payload) < _HEAD_SIZE:
        raise ProtocolError(f"service payload truncated ({len(payload)} bytes)")
    version, json_len = struct.unpack_from(_HEAD, payload)
    if version != PROTOCOL_VERSION:
        raise ProtocolVersionError(
            f"peer speaks protocol v{version}, this side v{PROTOCOL_VERSION}"
        )
    body = payload[_HEAD_SIZE : _HEAD_SIZE + json_len]
    if len(body) != json_len:
        raise ProtocolError("service payload shorter than its declared JSON")
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparsable service JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError("service JSON must be an object")
    return doc, payload[_HEAD_SIZE + json_len :]


# ------------------------------- requests -------------------------------- #


def encode_request(verb: str, fields: Dict[str, Any], blob: bytes = b"") -> bytes:
    if verb not in KNOWN_VERBS:
        raise ProtocolError(f"unknown verb {verb!r}")
    doc = dict(fields)
    doc["verb"] = verb
    return _encode(doc, blob)


def decode_request(payload: bytes) -> Tuple[str, Dict[str, Any], bytes]:
    """Return ``(verb, fields, blob)``; rejects unknown verbs."""
    doc, blob = _decode(payload)
    verb = doc.pop("verb", None)
    if verb not in KNOWN_VERBS:
        raise ProtocolError(f"unknown verb {verb!r}")
    return verb, doc, blob


# ------------------------------- responses ------------------------------- #


def encode_response(ok: bool, fields: Dict[str, Any], error: str = "") -> bytes:
    doc = dict(fields)
    doc["ok"] = bool(ok)
    if error:
        doc["error"] = error
    return _encode(doc)


def decode_response(payload: bytes) -> Dict[str, Any]:
    """Return the response document (always carries ``ok``)."""
    doc, blob = _decode(payload)
    if blob:
        raise ProtocolError("service responses carry no binary tail")
    if "ok" not in doc:
        raise ProtocolError("service response missing 'ok'")
    return doc
