"""Real-time pacing and the graceful-degradation ladder.

A batch decoder free-runs; a wall session must *present* pictures on the
stream's clock.  :class:`SessionPacer` pins every coded picture ``i`` to a
presentation deadline ``t0 + (i + 1) / fps`` and gates decode-ahead: the
scheduler may not start picture ``i`` before ``deadline(i) - lookahead``
frame periods, so an idle pool does not race a session minutes ahead of
its presentation point (that is the virtual-frame-buffer decoupling of
arXiv:2009.03368 — producers run on the wall's clock, not the CPU's).

When decode falls *behind* the clock, the pacer sheds work instead of
letting latency grow without bound.  Lateness, measured in frame periods,
drives a three-level ladder with hysteresis:

- **level 1** — skip B-pictures (reference-safe: nothing predicts from B);
- **level 2** — additionally skip the *tail* P-pictures of each GOP (the
  later a P, the fewer pictures depend on it; the head of the GOP keeps
  motion alive);
- **level 3** — decode keyframes only.

I-pictures are never dropped: every level keeps the refresh anchor, so a
degraded session recovers to full quality at the next GOP instead of
carrying corruption forward.  The ladder steps down only when lateness has
shrunk below ``exit_hysteresis`` of the entry threshold — a session
oscillating near a boundary degrades once, not every other frame.

The classes are clock-free (callers pass ``now``), so tests drive them
deterministically with a fake clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.mpeg2.constants import PictureType

#: Ladder levels, for reporting.
LEVEL_NAMES = ("full", "skip-b", "skip-p-tail", "keyframes-only")


@dataclass(frozen=True)
class LadderConfig:
    """Degradation tuning, all in units of frame periods."""

    enter_levels: Tuple[float, float, float] = (1.0, 3.0, 6.0)
    exit_hysteresis: float = 0.5  # leave a level below enter * hysteresis
    lookahead: int = 2  # pictures of decode-ahead the gate allows

    def __post_init__(self) -> None:
        if list(self.enter_levels) != sorted(self.enter_levels):
            raise ValueError("ladder thresholds must be non-decreasing")
        if not 0.0 <= self.exit_hysteresis < 1.0:
            raise ValueError("exit_hysteresis must be in [0, 1)")
        if self.lookahead < 1:
            raise ValueError("need at least one picture of decode-ahead")


class DegradationLadder:
    """Hysteretic lateness → level mapping plus the per-type drop policy."""

    def __init__(self, config: LadderConfig = LadderConfig()):
        self.config = config
        self.level = 0
        self.peak_level = 0
        self.transitions = 0

    def update(self, lateness_periods: float) -> int:
        """Advance the ladder for the observed lateness; returns the level."""
        enter = self.config.enter_levels
        target_up = 0
        for lvl, threshold in enumerate(enter, start=1):
            if lateness_periods > threshold:
                target_up = lvl
        if target_up > self.level:
            self.level = target_up
        else:
            # step down one level at a time, only once clearly recovered
            while self.level > 0:
                floor = enter[self.level - 1] * self.config.exit_hysteresis
                if lateness_periods >= floor:
                    break
                self.level -= 1
        if self.level != getattr(self, "_prev_level", 0):
            self.transitions += 1
        self._prev_level = self.level
        self.peak_level = max(self.peak_level, self.level)
        return self.level

    def should_drop(self, ptype: PictureType, gop_pos: int, gop_size: int) -> bool:
        """The drop policy at the current level.  Never drops I."""
        if ptype == PictureType.I:
            return False
        if self.level >= 3:
            return True
        if self.level >= 2 and ptype == PictureType.P and gop_pos >= gop_size // 2:
            return True
        if self.level >= 1 and ptype == PictureType.B:
            return True
        return False


class SessionPacer:
    """Presentation clock for one session's coded pictures."""

    def __init__(
        self,
        fps: float,
        config: LadderConfig = LadderConfig(),
        start_index: int = 0,
    ):
        if fps <= 0:
            raise ValueError("fps must be positive")
        if start_index < 0:
            raise ValueError("start_index must be non-negative")
        self.period = 1.0 / fps
        self.config = config
        self.ladder = DegradationLadder(config)
        self.start_index = start_index  # first coded picture on this clock
        self.t0: float = 0.0
        self.started = False

    def start(self, now: float) -> None:
        self.t0 = now
        self.started = True

    def deadline(self, i: int) -> float:
        """Presentation instant of coded picture ``i``.

        A resumed session (failover replay from a mid-stream I-picture)
        restarts the clock at ``start_index`` — the pictures before it
        were played, or dropped, by the session's previous incarnation.
        """
        return self.t0 + (i - self.start_index + 1) * self.period

    def gate_time(self, i: int) -> float:
        """Earliest instant decode of picture ``i`` may start (anti-free-run)."""
        return max(self.t0, self.deadline(i) - self.config.lookahead * self.period)

    def lateness_periods(self, i: int, now: float) -> float:
        """How far past picture ``i``'s deadline the clock already is."""
        return (now - self.deadline(i)) / self.period

    def decide(
        self,
        i: int,
        ptype: PictureType,
        gop_pos: int,
        gop_size: int,
        now: float,
    ) -> Tuple[bool, int]:
        """``(drop, level)`` for picture ``i`` about to be processed."""
        level = self.ladder.update(self.lateness_periods(i, now))
        return self.ladder.should_drop(ptype, gop_pos, gop_size), level
