"""The wall-service daemon: ``repro serve``.

One long-lived process owning a fixed worker pool.  Clients connect over
the cluster's socket transport (unix or tcp, resolved through the run
directory exactly like cluster workers find each other), speak the
versioned :mod:`repro.service.protocol`, and get back structured
answers.  Internally:

- every accepted connection gets a handler thread (requests on one
  connection are serialized, connections are independent);
- ``submit`` runs the :class:`AdmissionController`; accepted sessions
  join the :class:`PoolScheduler`, queued ones wait in FIFO order and
  are promoted as capacity frees up;
- ``workers`` pool threads pull picture leases from the scheduler and
  run them through each session's paced decoder;
- everything lands in ``service.trace.jsonl`` in the run directory —
  per-picture ``decode`` spans, ``drop`` instants, and one
  ``session_summary`` per finished session — so ``repro trace-report``
  attributes stalls and drops per session with no extra plumbing.

Submissions carry either a raw MPEG-2 bitstream blob or just a
:class:`StreamSpec`; in the latter case the daemon synthesizes a scaled
stream from the spec's generator family (admission still prices the
*full-resolution* spec — the paper's wall is driven by model streams
whose decode cost the test rig scales down).
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.net.channel import (
    Channel,
    ChannelClosed,
    ChannelError,
    ChannelTimeout,
    Listener,
    Message,
)
from repro.net.reliable import RL_SYN, ReliableEndpoint, decode_syn
from repro.obs.plane import empty_snapshot, obs_snapshot, snapshot_text
from repro.obs.slo import SLOConfig
from repro.perf.metrics import families
from repro.perf.telemetry import maybe_emit_stats, registry
from repro.perf.trace import TraceWriter
from repro.service.admission import (
    REJECT_DRAINING,
    AdmissionController,
    AdmissionDecision,
    PoolView,
)
from repro.service.pacer import LadderConfig
from repro.service.protocol import (
    SVC_REQUEST,
    SVC_RESPONSE,
    VERB_CANCEL,
    VERB_DRAIN,
    VERB_LIST,
    VERB_PING,
    VERB_SHUTDOWN,
    VERB_STATS,
    VERB_STATUS,
    VERB_SUBMIT,
    VERB_UNDRAIN,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    encode_response,
)
from repro.service.scheduler import PoolScheduler
from repro.service.session import Session, SessionState
from repro.workloads.streams import StreamSpec

SERVICE_NAME = "service"
TRACE_FILE = "service.trace.jsonl"


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` needs beyond the run directory."""

    capacity_mpps: float = 400.0  # pool decode capacity (admission currency)
    workers: int = 2  # pool threads actually decoding
    queue_slots: int = 4  # admission backlog bound
    transport: str = "unix"  # "unix" | "tcp"
    heartbeat_interval: float = 0.25
    dead_after: float = 10.0
    idle_timeout: float = 0.2  # worker poll period when the pool is idle
    enter_levels: tuple = (1.0, 3.0, 6.0)  # ladder thresholds, frame periods
    exit_hysteresis: float = 0.5
    lookahead: int = 2  # decode-ahead pictures per session
    synth_max_width: int = 96  # raster cap for spec-synthesized streams
    max_blob_bytes: int = 256 * 1024 * 1024
    telemetry: bool = True
    # Fleet integration: a distinct trace identity per daemon (per-daemon
    # attribution in merged reports) and a sid namespace offset so session
    # ids stay globally unique across a sharded fleet.
    trace_name: str = SERVICE_NAME
    sid_offset: int = 0
    # Reliable-link resume window: how long a disconnected gateway link
    # is held open for reconnect-and-resume before it is declared dead.
    link_resume_timeout: float = 10.0
    # Per-session SLO objectives (obs plane): tolerated bad fractions,
    # the (fast, slow) burn evaluation windows, and the alert threshold.
    slo_deadline_miss_target: float = 0.05
    slo_drop_rate_target: float = 0.05
    slo_windows: tuple = (5.0, 30.0)
    slo_burn_alert: float = 1.0
    # Optional HTTP /metrics listener: -1 disabled, 0 ephemeral port
    # (published to <rundir>/metrics.port), >0 a fixed port.
    metrics_port: int = -1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("pool needs at least one worker")
        if self.transport not in ("unix", "tcp"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.sid_offset < 0:
            raise ValueError("sid_offset must be non-negative")

    def ladder(self) -> LadderConfig:
        return LadderConfig(
            enter_levels=tuple(self.enter_levels),
            exit_hysteresis=self.exit_hysteresis,
            lookahead=self.lookahead,
        )

    def slo_config(self) -> SLOConfig:
        return SLOConfig(
            deadline_miss_target=self.slo_deadline_miss_target,
            drop_rate_target=self.slo_drop_rate_target,
            windows=tuple(self.slo_windows),
            burn_alert=self.slo_burn_alert,
        )

    def to_dict(self) -> dict:
        d = asdict(self)
        d["enter_levels"] = list(self.enter_levels)
        d["slo_windows"] = list(self.slo_windows)
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceConfig":
        d = dict(data)
        if "enter_levels" in d:
            d["enter_levels"] = tuple(d["enter_levels"])
        if "slo_windows" in d:
            d["slo_windows"] = tuple(d["slo_windows"])
        return cls(**d)


class WallService:
    """The daemon: listener + handler threads + worker pool + admission."""

    def __init__(self, rundir: Path, config: Optional[ServiceConfig] = None):
        self.rundir = Path(rundir)
        self.config = config or ServiceConfig()
        self.admission = AdmissionController(
            capacity_mpps=self.config.capacity_mpps,
            queue_slots=self.config.queue_slots,
        )
        self.scheduler = PoolScheduler()
        self.sessions: Dict[int, Session] = {}
        self.backlog: List[Session] = []  # FIFO admission queue
        self.draining = False  # administrative: refuse new work, finish old
        self._lock = threading.Lock()
        self._next_sid = 1 + self.config.sid_offset
        self._links: Dict[str, ReliableEndpoint] = {}  # reliable gateway links
        self._wall_drop_seen: Dict[tuple, float] = {}  # (tile, reason) → total
        self._links_lock = threading.Lock()
        self._stop = threading.Event()
        self._stop_done = threading.Event()  # cleanup actually finished
        self._stop_lock = threading.Lock()
        # A VERB_SHUTDOWN defers its stop until the reply has flushed;
        # dispatch and serve loop share a thread, so the pending reason
        # rides a thread-local and cannot leak to other connections.
        self._stop_requested = threading.local()
        self._threads: List[threading.Thread] = []
        self._listener: Optional[Listener] = None
        self.tracer: Optional[TraceWriter] = None
        self.started_at = 0.0
        self._metrics_http = None  # optional obs-plane HTTP listener

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def address(self):
        assert self._listener is not None
        return self._listener.address

    def start(self) -> None:
        self.rundir.mkdir(parents=True, exist_ok=True)
        self.tracer = TraceWriter(
            self.rundir / TRACE_FILE,
            self.config.trace_name,
            spans=self.config.telemetry,
        )
        if self.config.transport == "unix":
            self._listener = Listener(
                ("unix", str(self.rundir / f"{SERVICE_NAME}.sock"))
            )
        else:
            self._listener = Listener(("tcp", "127.0.0.1", 0))
            host, port = self._listener.address[1], self._listener.address[2]
            tmp = self.rundir / f"{SERVICE_NAME}.addr.tmp"
            tmp.write_text(f"{host} {port}")
            tmp.rename(self.rundir / f"{SERVICE_NAME}.addr")  # atomic publish
        if self.config.metrics_port >= 0:
            from repro.obs.http import MetricsHTTPServer

            self._metrics_http = MetricsHTTPServer(
                self._stats_snapshot, port=self.config.metrics_port
            )
            tmp = self.rundir / "metrics.port.tmp"
            tmp.write_text(str(self._metrics_http.port))
            tmp.rename(self.rundir / "metrics.port")  # atomic publish
        self.started_at = time.monotonic()
        self.tracer.emit(
            "service_start",
            capacity_mpps=self.config.capacity_mpps,
            workers=self.config.workers,
            queue_slots=self.config.queue_slots,
            transport=self.config.transport,
        )
        accept = threading.Thread(target=self._accept_loop, name="svc-accept", daemon=True)
        accept.start()
        self._threads.append(accept)
        for w in range(self.config.workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"svc-worker{w}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def stop(self, reason: str = "requested") -> None:
        with self._stop_lock:
            claimed = not self._stop.is_set()
            if claimed:
                self._stop.set()
        if not claimed:
            # Another thread owns the teardown.  Wait it out: a caller
            # returning from stop() may exit the process, which must not
            # happen while the owner is still flushing traces and
            # closing sockets.
            self._stop_done.wait(timeout=30.0)
            return
        try:
            self._stop_body(reason)
        finally:
            self._stop_done.set()

    def _stop_body(self, reason: str) -> None:
        self.scheduler.close()
        if self._metrics_http is not None:
            self._metrics_http.stop()
            self._metrics_http = None
        if self._listener is not None:
            self._listener.close()
        with self._links_lock:
            links = list(self._links.values())
            self._links.clear()
        for link in links:
            link.close()
        for t in self._threads:
            t.join(timeout=5.0)
        with self._lock:
            leftovers = [
                s
                for s in self.sessions.values()
                if s.state in (SessionState.RUNNING, SessionState.QUEUED)
            ]
        for s in leftovers:
            s.cancel(f"service stopped: {reason}")
            self._emit_summary(s)
        if self.tracer is not None:
            self.tracer.emit("service_stop", reason=reason)
            self.tracer.close()

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (the CLI foreground mode)."""
        try:
            while not self._stop.wait(0.2):
                pass
        except KeyboardInterrupt:
            self.stop("interrupted")

    def __enter__(self) -> "WallService":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # admission + pool state
    # ------------------------------------------------------------------ #

    def _pool_view(self) -> PoolView:
        # Broadcast sessions never claim pool decode capacity: only the
        # decode kind counts toward admission demand.
        running = [
            s
            for s in self.sessions.values()
            if s.state is SessionState.RUNNING
            and getattr(s, "kind", "decode") == "decode"
        ]
        soonest = min(
            (s.playout_remaining_s() for s in running), default=None
        )
        return PoolView(
            active_demand_mpps=sum(s.spec.demand_mpps for s in running),
            queued=len(self.backlog),
            soonest_finish_s=soonest,
        )

    def _admit_locked(self, session: Session) -> None:
        """Start a session on the pool (caller holds ``self._lock``)."""
        session.start(time.monotonic())
        self.scheduler.add(session)
        if self.tracer is not None:
            self.tracer.emit(
                "session_start",
                sid=session.sid,
                name=session.name,
                demand_mpps=round(session.spec.demand_mpps, 4),
                weight=session.weight,
                pictures=session.decoder.n_pictures,
            )

    def _promote_locked(self) -> None:
        """Pull queued sessions onto the pool while capacity allows."""
        while self.backlog:
            head = self.backlog[0]
            if head.state is not SessionState.QUEUED:
                self.backlog.pop(0)  # cancelled while waiting
                continue
            active = sum(
                s.spec.demand_mpps
                for s in self.sessions.values()
                if s.state is SessionState.RUNNING
                and getattr(s, "kind", "decode") == "decode"
            )
            if active + head.spec.demand_mpps > self.config.capacity_mpps:
                break
            self.backlog.pop(0)
            self._admit_locked(head)

    def _retire(self, session: Session) -> None:
        """A session reached a terminal state: summarize and free capacity."""
        with self._lock:
            if getattr(session, "_svc_retired", False):
                return  # cancel and worker completion can race here
            session._svc_retired = True
            if session in self.backlog:
                self.backlog.remove(session)
        self.scheduler.remove(session)
        self._emit_summary(session)
        # per-session metric names are transient: prune so a long-lived
        # daemon's stats snapshots don't grow with every session served
        registry().prune(f"session.{session.sid}.")
        with self._lock:
            self._promote_locked()
        self.scheduler.kick()

    def _emit_summary(self, session: Session) -> None:
        if self.tracer is not None:
            self.tracer.emit("session_summary", **session.summary())

    # ------------------------------------------------------------------ #
    # worker pool
    # ------------------------------------------------------------------ #

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            session = self.scheduler.next_lease(timeout=self.config.idle_timeout)
            if session is None:
                continue
            t0 = time.perf_counter()
            error: Optional[str] = None
            try:
                session.run_one(tracer=self.tracer)
            except Exception as exc:  # noqa: BLE001 - a session must not kill the pool
                error = f"{type(exc).__name__}: {exc}"
            cost = time.perf_counter() - t0
            self.scheduler.complete(session, cost)
            reg = registry()
            reg.counter(f"session.{session.sid}.leases").inc()
            reg.counter(f"session.{session.sid}.busy_s").inc(cost)
            reg.counter("pool.leases").inc()
            reg.counter("pool.busy_s").inc(cost)
            if self.tracer is not None:
                maybe_emit_stats(self.tracer, interval=1.0)
            if error is not None:
                session.finish(SessionState.FAILED, error)
                self._retire(session)
            elif session.state is SessionState.CANCELLED:
                self._retire(session)
            elif session.decoder is not None and session.decoder.done:
                session.finish(SessionState.COMPLETED)
                self._retire(session)

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #

    def _accept_loop(self) -> None:
        assert self._listener is not None
        n = 0
        while not self._stop.is_set():
            try:
                ch = self._listener.accept(
                    timeout=0.25, dead_after=self.config.dead_after
                )
            except ChannelTimeout:
                continue
            except (ChannelError, OSError):
                if self._stop.is_set():
                    return
                continue
            ch.name = f"svc-conn{n}"
            ch.start_heartbeat(self.config.heartbeat_interval)
            t = threading.Thread(
                target=self._handle_connection,
                args=(ch,),
                name=f"svc-conn{n}",
                daemon=True,
            )
            t.start()
            n += 1

    def _handle_connection(self, ch: Channel) -> None:
        """Classify a fresh connection by its first frame.

        An ``RL_SYN`` opens (or resumes) a reliable gateway link: a new
        token gets its own serve loop over the :class:`ReliableEndpoint`;
        a returning token re-arms the existing endpoint — its original
        serve loop picks the conversation back up, and this thread is
        done.  Anything else is a plain client connection and the first
        frame is already its first request.
        """
        try:
            first = ch.recv(timeout=self.config.dead_after)
        except (ChannelClosed, ChannelError):
            ch.close()
            return
        if first.type != RL_SYN:
            self._serve_loop(ch, first=first)
            return
        try:
            token, rx_next, feats = decode_syn(first.payload)
        except ChannelError:
            ch.close()
            return
        with self._links_lock:
            link = self._links.get(token)
            fresh = link is None
            if fresh:
                link = ReliableEndpoint(
                    token=token,
                    side="accepter",
                    resume_timeout=self.config.link_resume_timeout,
                    heartbeat_interval=self.config.heartbeat_interval,
                    name=f"svc-link-{token[:8]}",
                )
                self._links[token] = link
        try:
            link.adopt(ch, rx_next, feats)
        except (ChannelClosed, ChannelError):
            ch.close()
            if not fresh:
                return
        if fresh:
            try:
                self._serve_loop(link)
            finally:
                with self._links_lock:
                    self._links.pop(token, None)
                link.close()

    def _serve_loop(self, link, first: Optional[Message] = None) -> None:
        """One request/response conversation over a channel-like ``link``
        (a plain :class:`Channel` or a :class:`ReliableEndpoint`)."""
        try:
            while not self._stop.is_set():
                if first is not None:
                    msg, first = first, None
                else:
                    try:
                        msg = link.recv(timeout=0.5)
                    except ChannelTimeout:
                        continue
                if msg.type != SVC_REQUEST:
                    link.send(
                        SVC_RESPONSE,
                        encode_response(
                            False, {}, error=f"unexpected message type {msg.type}"
                        ),
                    )
                    continue
                try:
                    verb, fields, blob = decode_request(msg.payload)
                    reply = self._dispatch(verb, fields, blob)
                except ProtocolError as exc:
                    reply = encode_response(False, {}, error=str(exc))
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    reply = encode_response(
                        False, {}, error=f"{type(exc).__name__}: {exc}"
                    )
                link.send(SVC_RESPONSE, reply)
                if getattr(self._stop_requested, "reason", None) is not None:
                    return
                if self._stop.is_set():
                    return
        except (ChannelClosed, ChannelError):
            pass
        finally:
            self._begin_deferred_stop()
            link.close()

    def _begin_deferred_stop(self) -> None:
        """Start the teardown a VERB_SHUTDOWN deferred until its reply
        flushed.  Stopping from the dispatch itself races the requester's
        ack: the foreground serve loop wakes on ``_stop`` and exits the
        process while the handler thread is still writing the reply, so
        the client sees EOF instead of its acknowledgement."""
        pending = getattr(self._stop_requested, "reason", None)
        if pending is not None:
            self._stop_requested.reason = None
            threading.Thread(
                target=self.stop, args=(pending,), name="svc-stop", daemon=True
            ).start()

    def _dispatch(self, verb: str, fields: dict, blob: bytes) -> bytes:
        if verb == VERB_PING:
            return encode_response(True, self._info())
        if verb == VERB_SUBMIT:
            return self._do_submit(fields, blob)
        if verb == VERB_STATUS:
            return self._do_status(fields)
        if verb == VERB_CANCEL:
            return self._do_cancel(fields)
        if verb == VERB_LIST:
            with self._lock:
                sessions = [s.summary() for s in self.sessions.values()]
            return encode_response(True, {"sessions": sessions})
        if verb == VERB_STATS:
            return self._do_stats(fields)
        if verb == VERB_DRAIN:
            return self._do_drain(True, fields)
        if verb == VERB_UNDRAIN:
            return self._do_drain(False, fields)
        if verb == VERB_SHUTDOWN:
            reason = fields.get("reason", "client request")
            self._stop_requested.reason = reason  # stop after the reply flushes
            return encode_response(True, {"stopping": True, "reason": reason})
        return encode_response(False, {}, error=f"unhandled verb {verb!r}")

    def _do_drain(self, draining: bool, fields: dict) -> bytes:
        """Administrative drain: refuse new sessions, finish running ones."""
        reason = str(fields.get("reason", "operator request"))
        with self._lock:
            changed = self.draining != draining
            self.draining = draining
            active = sum(
                1
                for s in self.sessions.values()
                if s.state in (SessionState.RUNNING, SessionState.QUEUED)
            )
        if changed and self.tracer is not None:
            self.tracer.emit(
                "drain" if draining else "undrain", reason=reason, active=active
            )
        return encode_response(
            True, {"draining": draining, "changed": changed, "active": active}
        )

    def _info(self) -> dict:
        with self._lock:
            view = self._pool_view()
            states: Dict[str, int] = {}
            for s in self.sessions.values():
                states[s.state.value] = states.get(s.state.value, 0) + 1
        return {
            "protocol": PROTOCOL_VERSION,
            "name": self.config.trace_name,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "capacity_mpps": self.config.capacity_mpps,
            "active_demand_mpps": round(view.active_demand_mpps, 4),
            "utilization": round(
                view.active_demand_mpps / self.config.capacity_mpps, 4
            ),
            "workers": self.config.workers,
            "queued": view.queued,
            "sessions": states,
            "leases": self.scheduler.leases,
            "draining": self.draining,
            "admission": self.admission.export_state(view),
        }

    def _stats_snapshot(self) -> dict:
        """The obs-plane snapshot this daemon serves (VERB_STATS, HTTP).

        With telemetry off this is the empty-snapshot shape — scrapers
        get a valid, dark document instead of an error.
        """
        if not self.config.telemetry:
            snap = empty_snapshot()
            snap.update(
                {
                    "role": "daemon",
                    "name": self.config.trace_name,
                    "telemetry": False,
                    "sessions": [],
                }
            )
            return snap
        now = time.monotonic()
        with self._lock:
            view = self._pool_view()
            rows = [s.live_stats(now) for s in self.sessions.values()]
        with self._links_lock:
            links = {
                f"link-{token[:8]}": link.stats_dict()
                for token, link in self._links.items()
            }
        worst = max(
            (r["slo"]["worst_burn"] for r in rows if "slo" in r), default=0.0
        )
        wall_rows = [r for r in rows if r.get("kind") == "broadcast"]
        receivers = [rep for r in wall_rows for rep in r.get("receivers", [])]
        adm = self.admission.export_state(view)
        fam = families()
        fam.gauge(
            "repro_admission_headroom_mpps",
            "admission capacity not yet claimed by running sessions",
        ).set(adm["headroom_mpps"])
        fam.gauge(
            "repro_admission_active_demand_mpps",
            "aggregate demand of running sessions",
        ).set(adm["active_demand_mpps"])
        fam.gauge(
            "repro_admission_queued", "sessions waiting in the backlog"
        ).set(adm["queued"])
        fam.gauge(
            "repro_slo_worst_burn",
            "worst alertable SLO burn rate across live sessions",
        ).set(worst)
        fam.gauge(
            "repro_link_retransmits",
            "reliable-link frames retransmitted after reconnect (live links)",
        ).set(sum(s["retransmits"] for s in links.values()))
        # Daemon-side mirror of the wall receiver reports (the receiver
        # process owns the authoritative per-tile gauges; these let one
        # scrape of the daemon see the whole wall).
        lag_g = fam.gauge(
            "repro_wall_receiver_lag_s",
            "wall receiver lag behind the presentation timeline",
            labelnames=("tile",),
        )
        drop_c = fam.counter(
            "repro_wall_frames_dropped",
            "wall receiver frames not displayed, by reason",
            labelnames=("tile", "reason"),
        )
        for rep in receivers:
            tile = str(rep.get("tile", "?"))
            lag_g.set(float(rep.get("lag_s", 0.0) or 0.0), tile=tile)
            # Reports carry cumulative totals; the counter family wants
            # increments, so track what each tile last reported.
            for reason, field in (
                ("tuning", "dropped_tuning"),
                ("gap", "dropped_gap"),
                ("late", "dropped_late"),
            ):
                total = float(rep.get(field, 0) or 0)
                seen = self._wall_drop_seen.get((tile, reason), 0.0)
                if total > seen:
                    drop_c.inc(total - seen, tile=tile, reason=reason)
                    self._wall_drop_seen[(tile, reason)] = total
        return obs_snapshot(
            extra={
                "role": "daemon",
                "name": self.config.trace_name,
                "uptime_s": round(time.monotonic() - self.started_at, 3),
                "draining": self.draining,
                "admission": self.admission.export_state(view),
                "sessions": rows,
                "links": links,
                "slo": {"worst_burn": round(worst, 4)},
                "wall": {
                    "broadcasts": len(wall_rows),
                    "receivers": receivers,
                },
            }
        )

    def _do_stats(self, fields: dict) -> bytes:
        snap = self._stats_snapshot()
        doc = {"stats": snap}
        if fields.get("format") == "prometheus":
            doc["text"] = snapshot_text(snap)
        return encode_response(True, doc)

    # ------------------------------------------------------------------ #
    # verbs
    # ------------------------------------------------------------------ #

    def _do_submit(self, fields: dict, blob: bytes) -> bytes:
        if "spec" not in fields:
            raise ProtocolError("submit needs a 'spec' field")
        if fields.get("kind", "decode") == "broadcast":
            return self._do_submit_broadcast(fields, blob)
        spec = StreamSpec.from_dict(fields["spec"])
        weight = float(fields.get("weight", 1.0))
        slowdown = float(fields.get("slowdown_s", 0.0))
        start_at = int(fields.get("start_at", 0))
        name = str(fields.get("name", spec.name))
        if len(blob) > self.config.max_blob_bytes:
            raise ProtocolError(
                f"bitstream blob exceeds {self.config.max_blob_bytes} bytes"
            )
        if weight <= 0:
            raise ProtocolError("weight must be positive")
        if start_at < 0:
            raise ProtocolError("start_at must be non-negative")

        with self._lock:
            if self.draining:
                decision = AdmissionDecision(
                    action="reject",
                    reason=REJECT_DRAINING,
                    detail="daemon is draining: not accepting new sessions",
                    demand_mpps=spec.demand_mpps,
                )
                if self.tracer is not None:
                    self.tracer.emit(
                        "admission_reject", name=name, **decision.to_dict()
                    )
                return encode_response(True, {"admission": decision.to_dict()})
            decision = self.admission.evaluate(spec, self._pool_view())
            if decision.action == "reject":
                if self.tracer is not None:
                    self.tracer.emit(
                        "admission_reject", name=name, **decision.to_dict()
                    )
                return encode_response(True, {"admission": decision.to_dict()})

        # Synthesize outside the lock: encoding is the expensive part.
        stream = blob if blob else self._synthesize(spec, fields)

        with self._lock:
            # Re-evaluate: the pool (or drain state) may have changed
            # while we encoded.
            if self.draining:
                decision = AdmissionDecision(
                    action="reject",
                    reason=REJECT_DRAINING,
                    detail="daemon is draining: not accepting new sessions",
                    demand_mpps=spec.demand_mpps,
                )
            else:
                decision = self.admission.evaluate(spec, self._pool_view())
            if decision.action == "reject":
                if self.tracer is not None:
                    self.tracer.emit(
                        "admission_reject", name=name, **decision.to_dict()
                    )
                return encode_response(True, {"admission": decision.to_dict()})
            sid = self._next_sid
            self._next_sid += 1
            session = Session(
                sid=sid,
                name=name,
                spec=spec,
                stream=stream,
                weight=weight,
                slowdown_s=slowdown,
                ladder=self.config.ladder(),
                start_at=start_at,
                slo=self.config.slo_config(),
            )
            self.sessions[sid] = session
            if decision.action == "accept":
                self._admit_locked(session)
            else:
                self.backlog.append(session)
                if self.tracer is not None:
                    self.tracer.emit(
                        "session_queued", sid=sid, name=name, **decision.to_dict()
                    )
        return encode_response(
            True, {"sid": sid, "admission": decision.to_dict()}
        )

    def _do_submit_broadcast(self, fields: dict, blob: bytes) -> bytes:
        """``kind="broadcast"``: publish the stream on a fan-out channel.

        Broadcasts bypass admission *pricing* — they cost one encode plus
        socket writes, not pool decode capacity — but still respect the
        drain switch: a draining daemon starts no new publishers.
        """
        from repro.service.broadcast import (
            BroadcastSession,
            broadcast_control_address,
        )
        from repro.wall.config import WallSpec

        spec = StreamSpec.from_dict(fields["spec"])
        name = str(fields.get("name", spec.name))
        wall = WallSpec.from_dict(fields.get("wall", {"cols": 1, "rows": 1}))
        rate_fps = fields.get("rate_fps")
        if len(blob) > self.config.max_blob_bytes:
            raise ProtocolError(
                f"bitstream blob exceeds {self.config.max_blob_bytes} bytes"
            )
        with self._lock:
            if self.draining:
                decision = AdmissionDecision(
                    action="reject",
                    reason=REJECT_DRAINING,
                    detail="daemon is draining: not accepting new sessions",
                    demand_mpps=0.0,
                )
                if self.tracer is not None:
                    self.tracer.emit(
                        "admission_reject", name=name, **decision.to_dict()
                    )
                return encode_response(True, {"admission": decision.to_dict()})
        stream = blob if blob else self._synthesize(spec, fields)
        with self._lock:
            sid = self._next_sid
            self._next_sid += 1
            session = BroadcastSession(
                sid=sid,
                name=name,
                stream=stream,
                wall=wall,
                control=broadcast_control_address(
                    self.rundir, sid, self.config.transport
                ),
                mode=str(fields.get("bcast_mode", "stream")),
                rate_fps=float(rate_fps) if rate_fps is not None else None,
                fps=spec.fps,
                repair_window=int(fields.get("repair_window", 512)),
                on_finish=self._retire,
            )
            self.sessions[sid] = session
            session.start()
        if self.tracer is not None:
            self.tracer.emit(
                "broadcast_start",
                sid=sid,
                name=name,
                pictures=len(session.broadcaster.pictures),
                anchors=len(session.broadcaster.anchors),
                control=list(session.control_address),
            )
        return encode_response(
            True,
            {
                "sid": sid,
                "admission": {"action": "accept", "reason": "broadcast"},
                "broadcast": {
                    "control": list(session.control_address),
                    "anchors": session.broadcaster.anchors,
                    "n_pictures": len(session.broadcaster.pictures),
                    "wall": wall.to_dict(),
                },
            },
        )

    def _synthesize(self, spec: StreamSpec, fields: dict) -> bytes:
        """Encode a scaled synthetic stream matching the spec's profile."""
        from repro.mpeg2.encoder import Encoder, EncoderConfig

        n_frames = int(fields.get("n_frames", min(spec.n_frames, 48)))
        frames = spec.synthetic_frames(
            n_frames, max_width=self.config.synth_max_width
        )
        cfg = EncoderConfig(gop_size=spec.gop_size, b_frames=spec.b_frames)
        return Encoder(cfg).encode(frames)

    def _get_session(self, fields: dict) -> Session:
        try:
            sid = int(fields["sid"])
        except (KeyError, TypeError, ValueError):
            raise ProtocolError("need an integer 'sid'")
        with self._lock:
            session = self.sessions.get(sid)
        if session is None:
            raise ProtocolError(f"no session {sid}")
        return session

    def _do_status(self, fields: dict) -> bytes:
        session = self._get_session(fields)
        return encode_response(True, {"session": session.summary()})

    def _do_cancel(self, fields: dict) -> bytes:
        session = self._get_session(fields)
        reason = str(fields.get("reason", "cancelled by client"))
        changed = session.cancel(reason)
        if changed and not session.in_flight:
            # not mid-picture on a worker: retire immediately
            self._retire(session)
        self.scheduler.kick()
        return encode_response(
            True, {"sid": session.sid, "cancelled": changed}
        )
