"""Command-line interface: ``python -m repro <command>``.

Commands
--------
encode    compress a .y4m clip (or a synthetic workload) to MPEG-2
decode    decode an MPEG-2 stream to .y4m with the sequential decoder
wall      decode in parallel on an m x n wall and verify bit-exactness
wall-broadcast  publish one stream to N wall receivers (one encode, any N)
wall-receive    subscribe one tile to a wall broadcast and decode it
run-cluster  decode on real OS processes over the socket transport
simulate  run the timed 1-k-(m,n) cluster simulation on a Table 4 stream
info      show stream structure (pictures, types, sizes)
trace-report  post-mortem a run directory: text report + Perfetto JSON
serve     run the multi-session wall-service daemon
submit    submit a decode session to a running wall service
sessions  list, cancel, or shut down wall-service sessions
fleet     sharded multi-daemon serving: gateway, status, drain
top       live fleet/daemon health dashboard (obs-plane scrape)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.mpeg2.decoder import Decoder, decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.parser import PictureScanner
from repro.mpeg2.ratecontrol import RateControlConfig, RateControlledEncoder
from repro.mpeg2.video_io import read_y4m, write_y4m
from repro.parallel.pipeline import ParallelDecoder
from repro.wall.layout import TileLayout
from repro.workloads.streams import stream_by_id
from repro.workloads.synthetic import GENERATORS


def _load_frames(args) -> list:
    if args.input:
        return read_y4m(args.input)
    gen = GENERATORS[args.synthetic]
    return gen(args.width, args.height, args.frames, seed=args.seed)


def _load_stream(path: str) -> bytes:
    """Read an encoded stream; program streams are demuxed transparently."""
    data = Path(path).read_bytes()
    if data.startswith(b"\x00\x00\x01\xba"):
        from repro.mpeg2.systems import demux_program_stream

        data = demux_program_stream(data).video_es
    return data


def cmd_encode(args) -> int:
    frames = _load_frames(args)
    base = EncoderConfig(
        gop_size=args.gop, b_frames=args.b_frames, search_range=args.search_range
    )
    if args.bpp:
        enc = RateControlledEncoder(base, RateControlConfig(target_bpp=args.bpp))
        data = enc.encode(frames)
    else:
        data = Encoder(base).encode(frames)
    Path(args.output).write_bytes(data)
    bpp = 8 * len(data) / (frames[0].n_pixels * len(frames))
    print(
        f"encoded {len(frames)} frames {frames[0].width}x{frames[0].height} "
        f"-> {len(data)} bytes ({bpp:.3f} bpp) -> {args.output}"
    )
    return 0


def cmd_decode(args) -> int:
    stream = _load_stream(args.input)
    frames = decode_stream(stream)
    write_y4m(args.output, frames, fps=args.fps)
    print(f"decoded {len(frames)} frames -> {args.output}")
    return 0


def _wall_spec(args):
    """The :class:`~repro.wall.config.WallSpec` a wall verb should use:
    ``--wall-config`` JSON when given, else the -m/-n/--overlap flags."""
    from repro.wall.config import WallSpec

    if getattr(args, "wall_config", None):
        return WallSpec.load(args.wall_config)
    return WallSpec(
        cols=args.m, rows=args.n, overlap=getattr(args, "overlap", 0)
    )


def cmd_wall(args) -> int:
    stream = _load_stream(args.input)
    sequence, _ = PictureScanner(stream).scan()
    spec = _wall_spec(args)
    layout = spec.to_layout(sequence.width, sequence.height)
    pdec = ParallelDecoder(layout, k=args.k, verify_overlaps=True)
    wall_frames = pdec.decode(stream)
    if args.verify:
        reference = decode_stream(stream)
        worst = max(
            a.max_abs_diff(b) for a, b in zip(reference, wall_frames)
        )
        status = "bit-exact" if worst == 0 else f"MISMATCH (max diff {worst})"
        print(f"verification vs sequential decoder: {status}")
        if worst:
            return 1
    if args.output:
        write_y4m(args.output, wall_frames, fps=args.fps)
        print(f"wrote wall output -> {args.output}")
    s = pdec.stats
    print(
        f"1-{args.k}-({spec.cols},{spec.rows}): {len(wall_frames)} frames, "
        f"{s.exchange_count} block exchanges "
        f"({s.exchange_bytes / 1e3:.1f} kB), "
        f"SPH overhead {s.sph_overhead_fraction:.1%}"
    )
    return 0


def _bcast_control(args):
    if args.transport == "tcp":
        host, _, port = args.bind.partition(":")
        return ("tcp", host or "127.0.0.1", int(port or 0))
    return ("unix", args.bind)


def cmd_wall_broadcast(args) -> int:
    """Publish one stream to N wall receivers (one encode, any N)."""
    import json

    from repro.wall.broadcast import WallBroadcaster

    if args.input:
        stream = _load_stream(args.input)
    else:
        spec = stream_by_id(args.stream)
        frames = spec.synthetic_frames(args.frames, max_width=args.max_width)
        cfg = EncoderConfig(gop_size=spec.gop_size, b_frames=spec.b_frames)
        stream = Encoder(cfg).encode(frames)
    wall = _wall_spec(args)
    bc = WallBroadcaster(
        stream,
        wall,
        _bcast_control(args),
        mode=args.mode,
        fps=args.fps,
        name=args.name,
    )
    print(
        f"broadcasting {len(bc.pictures)} pictures "
        f"({bc.sequence.width}x{bc.sequence.height}) to a "
        f"{wall.cols}x{wall.rows} wall at {bc.control_address}; "
        f"anchors: {bc.anchors}",
        flush=True,
    )
    from repro.net.channel import ChannelTimeout

    try:
        if args.wait_subscribers:
            try:
                bc.sender.wait_subscribers(
                    args.wait_subscribers, timeout=args.timeout
                )
            except ChannelTimeout as exc:
                print(f"timed out waiting for subscribers: {exc}", file=sys.stderr)
                return 1
        stats = bc.run(rate_fps=args.rate_fps or None)
        # Hold the channel open briefly so receivers can finish pulling
        # buffered records and file their final reports.
        import time as _time

        _time.sleep(args.linger)
        reports = bc.receiver_reports()
    finally:
        bc.close()
    print(json.dumps({"stats": stats, "receivers": reports}, indent=2))
    return 0


def cmd_wall_receive(args) -> int:
    """Run one tile's receiver against a wall broadcast."""
    import json

    from repro.wall.receiver import WallReceiver

    rx = WallReceiver(
        _bcast_control(args),
        args.tile,
        name=args.name or f"tile{args.tile}",
        use_clock=args.clock,
        connect_timeout=args.timeout,
    )
    print(
        f"subscribed tile {args.tile}: start_at={rx.start_at} "
        f"epoch={rx.rx.epoch}",
        flush=True,
    )
    with rx:
        summary = rx.run(max_wall_s=args.max_wall_s)
    if args.save_last and rx.last_frame is not None and rx.layout is not None:
        import numpy as np

        part = rx.layout.tile(args.tile).partition
        f = rx.last_frame
        np.savez(
            args.save_last,
            rect=np.array([part.x0, part.y0, part.x1, part.y1]),
            y=f.y[part.y0 : part.y1, part.x0 : part.x1],
            cb=f.cb[part.y0 // 2 : part.y1 // 2, part.x0 // 2 : part.x1 // 2],
            cr=f.cr[part.y0 // 2 : part.y1 // 2, part.x0 // 2 : part.x1 // 2],
        )
    text = json.dumps(summary, indent=2)
    if args.json_out:
        Path(args.json_out).write_text(text)
    print(text)
    return 0 if summary["state"] == "done" else 1


def cmd_run_cluster(args) -> int:
    from repro.cluster.runtime import ClusterError, ClusterSupervisor, WallConfig

    stream = _load_stream(args.input)
    cfg = WallConfig(
        m=args.m,
        n=args.n,
        k=args.k,
        overlap=args.overlap,
        transport=args.transport,
        partition_policy=args.partition_policy,
        partition_ewma=args.partition_ewma,
    )
    sup = ClusterSupervisor(cfg, trace_dir=args.trace_dir)
    try:
        frames = sup.decode(stream, timeout=args.timeout)
    except ClusterError as exc:
        print(f"cluster failed: {exc}", file=sys.stderr)
        return 1
    if args.verify:
        reference = decode_stream(stream)
        worst = max(a.max_abs_diff(b) for a, b in zip(reference, frames))
        status = "bit-exact" if worst == 0 else f"MISMATCH (max diff {worst})"
        print(f"verification vs sequential decoder: {status}")
        if worst:
            return 1
    if args.output:
        write_y4m(args.output, frames, fps=args.fps)
        print(f"wrote wall output -> {args.output}")
    st = sup.stage_times
    print(
        f"1-{cfg.k}-({cfg.m},{cfg.n}) on {1 + cfg.k + cfg.n_tiles} processes "
        f"({cfg.transport}): {len(frames)} frames, "
        f"decoder stage time {st.total:.2f}s across {st.pictures} tile-pictures"
    )
    if sup.merged_trace_path is not None:
        print(f"merged trace -> {sup.merged_trace_path}")
    if sup.perfetto_path is not None:
        print(f"perfetto timeline -> {sup.perfetto_path}")
    return 0


def cmd_trace_report(args) -> int:
    from repro.perf.export import build_report, render_report, write_chrome_trace
    from repro.perf.trace import merge_traces

    rundir = Path(args.rundir)
    if not rundir.is_dir():
        print(f"not a run directory: {rundir}", file=sys.stderr)
        return 2
    if args.follow:
        return _follow_trace(rundir, args)
    try:
        events = merge_traces(
            rundir, strict=not args.lenient, recursive=args.recursive
        )
    except (ValueError, KeyError) as exc:
        print(f"unparsable trace event in {rundir}: {exc}", file=sys.stderr)
        print("(re-run with --lenient to skip torn lines)", file=sys.stderr)
        return 1
    if not events:
        print(f"no *.trace.jsonl events found under {rundir}", file=sys.stderr)
        return 1

    json_path = Path(args.json) if args.json else rundir / "trace.perfetto.json"
    write_chrome_trace(events, json_path)

    text = render_report(build_report(events))
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote report -> {args.out}")
    else:
        print(text, end="")
    print(f"perfetto timeline -> {json_path}  (open in ui.perfetto.dev)")
    return 0


def _follow_trace(rundir: Path, args) -> int:
    """``trace-report --follow``: re-merge the run directory's live trace
    streams every ``--interval`` seconds (always lenient — the writers
    are mid-line by definition) and redraw the report."""
    import time as _time

    from repro.perf.export import build_report, render_report
    from repro.perf.trace import merge_traces

    iterations = args.iterations
    shown = 0
    try:
        while True:
            events = merge_traces(rundir, strict=False, recursive=args.recursive)
            if iterations != 1:
                print("\x1b[2J\x1b[H", end="")
            if events:
                print(render_report(build_report(events)), end="")
            else:
                print(f"(no trace events yet under {rundir})")
            shown += 1
            if iterations and shown >= iterations:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_top(args) -> int:
    from repro.obs.top import run_top

    return run_top(
        Path(args.rundir),
        transport=args.transport,
        interval=args.interval,
        count=1 if args.once else args.count,
        clear=not (args.once or args.no_clear),
    )


def cmd_simulate(args) -> int:
    from repro.parallel.system import TimedSystem

    spec = stream_by_id(args.stream)
    layout = TileLayout(
        spec.width, spec.height, args.m, args.n, overlap=args.overlap
    )
    res = TimedSystem(
        spec,
        layout,
        k=args.k,
        n_frames=args.frames,
        tiles_per_node=args.tiles_per_node,
    ).run()
    print(
        f"{res.label} on stream {spec.sid} ({spec.width}x{spec.height}): "
        f"{res.fps:.1f} fps, {res.pixel_rate_mpps:.0f} Mpixel/s"
    )
    fr = res.mean_breakdown().fractions()
    print(
        "decoder time: "
        + "  ".join(f"{k_} {v:.0%}" for k_, v in fr.items())
    )
    if args.bandwidth:
        for name, (s, r) in res.bandwidth.items():
            print(f"  {name:12s} send {s:6.2f} MB/s   recv {r:6.2f} MB/s")
    return 0


def cmd_info(args) -> int:
    stream = _load_stream(args.input)
    dec = Decoder()
    sequence, pictures = PictureScanner(stream).scan()
    print(
        f"{sequence.width}x{sequence.height} @ {sequence.frame_rate:g} fps, "
        f"{len(pictures)} coded pictures, {len(stream)} bytes"
    )
    if args.pictures:
        from repro.mpeg2.parser import MacroblockParser

        parser = MacroblockParser(sequence)
        for unit in pictures:
            p = parser.parse_picture(unit.data)
            print(
                f"  #{unit.coded_index:3d} {p.header.picture_type.name} "
                f"tref={p.header.temporal_reference:3d} "
                f"{unit.size_bytes:6d} B  coded={p.n_coded:4d} "
                f"skipped={p.n_skipped}"
            )
    return 0


def cmd_report(args) -> int:
    from repro.perf.report import generate_report

    text = generate_report(n_frames=args.frames)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote report -> {args.output}")
    else:
        print(text)
    return 0


def cmd_validate(args) -> int:
    from repro.mpeg2.validate import validate_stream

    report = validate_stream(Path(args.input).read_bytes())
    for f in report.findings:
        print(f)
    print(
        f"{report.pictures} pictures, {report.macroblocks} macroblocks: "
        + ("OK" if report.ok else f"{len(report.errors())} error(s)")
    )
    return 0 if report.ok else 1


def cmd_streams(args) -> int:
    from repro.workloads.streams import table4_rows

    for r in table4_rows():
        print(
            f"{r['stream']:3d} {r['name']:8s} {r['resolution']:>10s} "
            f"{r['avg_frame_bytes']:>8d} B/frame  {r['bpp']:.2f} bpp  "
            f"{r['bit_rate_mbps']:6.1f} Mb/s"
        )
    return 0


def cmd_serve(args) -> int:
    from repro.service import ServiceConfig, WallService

    cfg = ServiceConfig(
        capacity_mpps=args.capacity,
        workers=args.workers,
        queue_slots=args.queue_slots,
        transport=args.transport,
        lookahead=args.lookahead,
        telemetry=not args.no_telemetry,
        metrics_port=args.metrics_port,
    )
    svc = WallService(Path(args.rundir), cfg)
    svc.start()
    print(
        f"wall service up: rundir={args.rundir} transport={cfg.transport} "
        f"capacity={cfg.capacity_mpps} Mpixel/s workers={cfg.workers}"
    )
    try:
        svc.serve_forever()
    finally:
        svc.stop()
        print("wall service stopped")
    return 0


def cmd_submit(args) -> int:
    import json as _json

    from repro.service import ServiceClient

    spec = stream_by_id(args.stream)
    stream = _load_stream(args.input) if args.input else b""
    wall = None
    if args.wall:
        from repro.wall.config import WallSpec

        wall = WallSpec.load(args.wall).to_dict()
    with ServiceClient(Path(args.rundir), transport=args.transport) as client:
        reply = client.submit(
            spec,
            stream=stream,
            name=args.name,
            weight=args.weight,
            slowdown_s=args.slowdown,
            n_frames=args.frames,
            kind="broadcast" if args.broadcast else "decode",
            wall=wall,
            rate_fps=args.rate_fps or None,
        )
        admission = reply["admission"]
        print(_json.dumps(admission, indent=2, sort_keys=True))
        if "sid" not in reply:
            return 3  # structured rejection: reason + retry_after_s above
        sid = reply["sid"]
        print(f"session {sid} {admission['action']}")
        if "broadcast" in reply:
            print(_json.dumps(reply["broadcast"], indent=2, sort_keys=True))
        if args.wait:
            final = client.wait(sid, timeout=args.timeout)
            print(_json.dumps(final, indent=2, sort_keys=True))
            return 0 if final["state"] == "completed" else 1
    return 0


def cmd_sessions(args) -> int:
    from repro.service import ServiceClient

    with ServiceClient(Path(args.rundir), transport=args.transport) as client:
        if args.cancel is not None:
            reply = client.cancel(args.cancel, reason=args.reason)
            print(f"cancel {args.cancel}: {reply['cancelled']}")
            return 0
        if args.shutdown:
            client.shutdown(reason=args.reason)
            print("shutdown requested")
            return 0
        info = client.ping()
        print(
            f"service: {info['utilization']:.0%} of "
            f"{info['capacity_mpps']} Mpixel/s, {info['queued']} queued, "
            f"{info['workers']} workers, {info['leases']} leases"
        )
        rows = client.list_sessions()
        for s in sorted(rows, key=lambda r: r["sid"]):
            if s.get("kind") == "broadcast":
                print(
                    f"  [{s['sid']}] {s['name']:12s} {s['state']:10s} "
                    f"{s['processed']}/{s['pictures']} pics  "
                    f"broadcast subs {s['subscribers']}  "
                    f"encodes {s['encodes']}  repairs {s['repairs']}  "
                    f"gaps {s['gaps']}"
                )
                continue
            drops = s["dropped_b"] + s["dropped_p"]
            print(
                f"  [{s['sid']}] {s['name']:12s} {s['state']:10s} "
                f"{s['processed']}/{s['pictures']} pics  "
                f"drops {drops} (forced {s['forced_drops']})  "
                f"peak-level {s['peak_degrade_level']}  "
                f"p95 {s['latency_p95_ms']:.1f} ms"
            )
    return 0


def cmd_fleet_serve(args) -> int:
    from repro.fleet import FleetConfig, FleetGateway
    from repro.service import ServiceConfig

    svc = ServiceConfig(
        capacity_mpps=args.capacity,
        workers=args.workers,
        queue_slots=args.queue_slots,
    )
    cfg = FleetConfig(
        daemons=args.daemons,
        transport=args.transport,
        reliable_links=not args.no_reliable_links,
        service=svc,
    )
    gw = FleetGateway(Path(args.rundir), cfg)
    gw.start()
    print(
        f"fleet gateway up: rundir={args.rundir} daemons={cfg.daemons} "
        f"transport={cfg.transport} "
        f"capacity={cfg.daemons * svc.capacity_mpps:g} Mpixel/s total "
        f"(reliable links {'on' if cfg.reliable_links else 'off'})"
    )
    print(f"submit through it with: repro submit {args.rundir} --wait")
    try:
        gw.serve_forever()
    finally:
        gw.stop()
        print("fleet gateway stopped")
    return 0


def cmd_fleet_status(args) -> int:
    import json as _json

    from repro.service import ServiceClient

    with ServiceClient(Path(args.rundir), transport=args.transport) as client:
        info = client.ping()
        if args.json:
            print(_json.dumps(info, indent=2, sort_keys=True))
            return 0
        print(
            f"gateway: {info.get('failovers', 0)} failover(s), "
            f"{info['active_demand_mpps']}/{info['capacity_mpps']} Mpixel/s "
            f"across {len(info.get('daemons', []))} daemon(s)"
        )
        for d in info.get("daemons", []):
            a = d.get("admission", {})
            flags = d["state"] + (", draining" if d.get("draining") else "")
            print(
                f"  {d['name']:10s} [{flags}]  "
                f"headroom {a.get('headroom_mpps', '?')} Mpixel/s  "
                f"queued {a.get('queued', '?')}/{a.get('queue_slots', '?')}"
            )
        rows = client.list_sessions()
        for s in sorted(rows, key=lambda r: r["sid"]):
            print(
                f"  [{s['sid']}] {s.get('name', '?'):12s} "
                f"{s.get('state', '?'):10s} on {s.get('daemon') or '-':10s} "
                f"failovers {s.get('failovers', 0)} "
                f"(dropped {s.get('failover_dropped', 0)} pics)"
            )
    return 0


def cmd_fleet_drain(args) -> int:
    from repro.service import ServiceClient

    with ServiceClient(Path(args.rundir), transport=args.transport) as client:
        verb = "undrain" if args.undo else "drain"
        reply = client.request(
            verb, {"daemon": args.daemon, "reason": args.reason}
        )
        print(
            f"{verb} {args.daemon}: draining={reply['draining']} "
            f"({reply.get('active', 0)} active session(s) finishing)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Hierarchical parallel MPEG-2 decoder for tiled display walls",
    )
    sub = p.add_subparsers(dest="command", required=True)

    e = sub.add_parser("encode", help="encode y4m or synthetic content")
    e.add_argument("-i", "--input", help=".y4m input (default: synthetic)")
    e.add_argument("-o", "--output", required=True, help="output .m2v path")
    e.add_argument("--synthetic", choices=sorted(GENERATORS), default="pattern")
    e.add_argument("--width", type=int, default=192)
    e.add_argument("--height", type=int, default=128)
    e.add_argument("--frames", type=int, default=24)
    e.add_argument("--seed", type=int, default=0)
    e.add_argument("--gop", type=int, default=9)
    e.add_argument("--b-frames", type=int, default=2)
    e.add_argument("--search-range", type=int, default=7)
    e.add_argument("--bpp", type=float, help="rate-control target (bits/pixel)")
    e.set_defaults(func=cmd_encode)

    d = sub.add_parser("decode", help="sequential decode to .y4m")
    d.add_argument("-i", "--input", required=True)
    d.add_argument("-o", "--output", required=True)
    d.add_argument("--fps", type=float, default=30.0)
    d.set_defaults(func=cmd_decode)

    w = sub.add_parser("wall", help="parallel decode on an m x n wall")
    w.add_argument("-i", "--input", required=True)
    w.add_argument("-o", "--output", help="optional .y4m of the wall image")
    w.add_argument("-m", type=int, default=2)
    w.add_argument("-n", type=int, default=2)
    w.add_argument("-k", type=int, default=1, help="second-level splitters")
    w.add_argument("--overlap", type=int, default=0)
    w.add_argument(
        "--wall-config",
        help="wall spec JSON (cols/rows/overlap/bezel/crops); overrides "
        "-m/-n/--overlap",
    )
    w.add_argument("--fps", type=float, default=30.0)
    w.add_argument("--verify", action="store_true", default=True)
    w.add_argument("--no-verify", dest="verify", action="store_false")
    w.set_defaults(func=cmd_wall)

    wb = sub.add_parser(
        "wall-broadcast",
        help="publish one stream to N wall receivers (one encode, any N)",
    )
    wb.add_argument("-i", "--input", help="encoded .m2v (default: synthesize)")
    wb.add_argument("--stream", type=int, default=5, help="Table 4 stream id")
    wb.add_argument("--frames", type=int, default=18)
    wb.add_argument("--max-width", type=int, default=96)
    wb.add_argument("-m", type=int, default=2)
    wb.add_argument("-n", type=int, default=2)
    wb.add_argument("--overlap", type=int, default=0)
    wb.add_argument(
        "--wall-config",
        help="wall spec JSON shared with receivers (overrides -m/-n/--overlap)",
    )
    wb.add_argument(
        "--bind", required=True,
        help="control socket: a unix path, or host:port with --transport tcp",
    )
    wb.add_argument("--transport", choices=["unix", "tcp"], default="unix")
    wb.add_argument(
        "--mode", choices=["stream", "udp"], default="stream",
        help="fan-out payload path: per-subscriber stream or UDP multicast",
    )
    wb.add_argument("--fps", type=float, default=30.0, help="stream timeline fps")
    wb.add_argument(
        "--rate-fps", type=float, default=0.0,
        help="pace the publish loop at this rate (0 = free-run)",
    )
    wb.add_argument(
        "--wait-subscribers", type=int, default=0,
        help="block until N receivers have subscribed before publishing",
    )
    wb.add_argument(
        "--linger", type=float, default=1.0,
        help="seconds to keep serving repairs/reports after the last record",
    )
    wb.add_argument("--timeout", type=float, default=60.0)
    wb.add_argument("--name", default="wall")
    wb.set_defaults(func=cmd_wall_broadcast)

    wr = sub.add_parser(
        "wall-receive", help="subscribe one tile to a wall broadcast"
    )
    wr.add_argument(
        "--bind", required=True,
        help="the broadcaster's control socket (unix path or host:port)",
    )
    wr.add_argument("--transport", choices=["unix", "tcp"], default="unix")
    wr.add_argument("--tile", type=int, required=True)
    wr.add_argument("--name", help="receiver label (default: tile<N>)")
    wr.add_argument(
        "--clock", action="store_true",
        help="present on the shared wall timeline (late frames drop); "
        "default free-runs",
    )
    wr.add_argument("--json-out", help="write the run summary JSON here")
    wr.add_argument(
        "--save-last", help="save the last displayed partition crop (.npz)"
    )
    wr.add_argument("--max-wall-s", type=float, default=120.0)
    wr.add_argument("--timeout", type=float, default=30.0)
    wr.set_defaults(func=cmd_wall_receive)

    c = sub.add_parser(
        "run-cluster", help="decode on real OS processes over sockets"
    )
    c.add_argument("-i", "--input", required=True)
    c.add_argument("-o", "--output", help="optional .y4m of the wall image")
    c.add_argument("-m", type=int, default=2)
    c.add_argument("-n", type=int, default=2)
    c.add_argument("-k", type=int, default=1, help="second-level splitters")
    c.add_argument("--overlap", type=int, default=0)
    c.add_argument(
        "--transport",
        choices=["unix", "tcp"],
        default="unix",
        help="socket flavor for every channel",
    )
    c.add_argument(
        "--trace-dir",
        help="keep the run directory (traces, logs) here instead of a tempdir",
    )
    c.add_argument(
        "--partition-policy",
        choices=["static", "content", "feedback"],
        default="static",
        help="runtime tile-partition policy; adaptive policies re-place "
        "partition lines at closed-GOP boundaries (output stays bit-exact)",
    )
    c.add_argument(
        "--partition-ewma",
        type=float,
        default=0.5,
        help="smoothing factor of the adaptive policy's load estimate",
    )
    c.add_argument("--timeout", type=float, default=120.0)
    c.add_argument("--fps", type=float, default=30.0)
    c.add_argument("--verify", action="store_true", default=True)
    c.add_argument("--no-verify", dest="verify", action="store_false")
    c.set_defaults(func=cmd_run_cluster)

    s = sub.add_parser("simulate", help="timed cluster simulation")
    s.add_argument("--stream", type=int, default=16, help="Table 4 stream id")
    s.add_argument("-m", type=int, default=4)
    s.add_argument("-n", type=int, default=4)
    s.add_argument("-k", type=int, default=4)
    s.add_argument("--overlap", type=int, default=0)
    s.add_argument("--frames", type=int, default=60)
    s.add_argument("--bandwidth", action="store_true")
    s.add_argument(
        "--tiles-per-node",
        type=int,
        default=1,
        help="projectors per decoder PC (multi-display extension)",
    )
    s.set_defaults(func=cmd_simulate)

    i = sub.add_parser("info", help="inspect an encoded stream")
    i.add_argument("-i", "--input", required=True)
    i.add_argument("--pictures", action="store_true")
    i.set_defaults(func=cmd_info)

    r = sub.add_parser("report", help="regenerate the full results report")
    r.add_argument("-o", "--output", help="markdown output path (default stdout)")
    r.add_argument("--frames", type=int, default=30)
    r.set_defaults(func=cmd_report)

    v = sub.add_parser("validate", help="conformance-check a stream")
    v.add_argument("-i", "--input", required=True)
    v.set_defaults(func=cmd_validate)

    t = sub.add_parser("streams", help="list the Table 4 test streams")
    t.set_defaults(func=cmd_streams)

    tr = sub.add_parser(
        "trace-report",
        help="post-mortem a cluster run directory (text report + Perfetto JSON)",
    )
    tr.add_argument("rundir", help="run directory holding *.trace.jsonl streams")
    tr.add_argument(
        "--json",
        help="Perfetto/Chrome trace output path "
        "(default: <rundir>/trace.perfetto.json)",
    )
    tr.add_argument("-o", "--out", help="text report path (default: stdout)")
    tr.add_argument(
        "--lenient",
        action="store_true",
        help="skip unparsable trace lines instead of failing",
    )
    tr.add_argument(
        "--recursive",
        action="store_true",
        help="also merge traces from subdirectories (fleet run layout: "
        "gateway trace on top, one directory per daemon)",
    )
    tr.add_argument(
        "--follow",
        action="store_true",
        help="tail the run directory: re-merge (leniently) and redraw the "
        "report every --interval seconds until interrupted",
    )
    tr.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period for --follow (seconds)",
    )
    tr.add_argument(
        "--iterations", type=int, default=0,
        help="stop --follow after N redraws (0 = until interrupted)",
    )
    tr.set_defaults(func=cmd_trace_report)

    sv = sub.add_parser(
        "serve", help="run the multi-session wall-service daemon"
    )
    sv.add_argument("rundir", help="run directory (rendezvous + traces)")
    sv.add_argument(
        "--capacity", type=float, default=400.0,
        help="pool decode capacity in Mpixel/s (admission currency)",
    )
    sv.add_argument("--workers", type=int, default=2)
    sv.add_argument("--queue-slots", type=int, default=4)
    sv.add_argument("--transport", choices=["unix", "tcp"], default="unix")
    sv.add_argument("--lookahead", type=int, default=2)
    sv.add_argument("--no-telemetry", action="store_true")
    sv.add_argument(
        "--metrics-port", type=int, default=-1,
        help="HTTP /metrics listener port (0 = ephemeral, published to "
        "<rundir>/metrics.port; default: disabled)",
    )
    sv.set_defaults(func=cmd_serve)

    tp = sub.add_parser(
        "top", help="live fleet/daemon health dashboard (polls VERB_STATS)"
    )
    tp.add_argument("rundir", help="a gateway's or daemon's run directory")
    tp.add_argument("--transport", choices=["unix", "tcp"], default="unix")
    tp.add_argument(
        "--interval", type=float, default=1.0, help="refresh period (seconds)"
    )
    tp.add_argument(
        "--count", type=int, default=0,
        help="stop after N frames (0 = until interrupted)",
    )
    tp.add_argument(
        "--once", action="store_true",
        help="print one plain snapshot and exit (CI / scripting)",
    )
    tp.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen",
    )
    tp.set_defaults(func=cmd_top)

    sb = sub.add_parser(
        "submit", help="submit a decode session to a running wall service"
    )
    sb.add_argument("rundir", help="the daemon's run directory")
    sb.add_argument("--stream", type=int, default=5, help="Table 4 stream id")
    sb.add_argument(
        "-i", "--input",
        help="encoded .m2v to play (default: synthesize from the spec)",
    )
    sb.add_argument("--name", help="session label (default: stream name)")
    sb.add_argument("--weight", type=float, default=1.0)
    sb.add_argument(
        "--slowdown", type=float, default=0.0,
        help="artificial per-picture decode load in seconds (load generation)",
    )
    sb.add_argument(
        "--frames", type=int, default=None,
        help="frames to synthesize when no --input is given",
    )
    sb.add_argument("--transport", choices=["unix", "tcp"], default="unix")
    sb.add_argument("--wait", action="store_true", help="block until terminal")
    sb.add_argument("--timeout", type=float, default=300.0)
    sb.add_argument(
        "--broadcast", action="store_true",
        help="publish on a wall fan-out channel instead of pool decode "
        "(the reply prints the control address receivers subscribe to)",
    )
    sb.add_argument(
        "--wall", help="wall spec JSON for a --broadcast session"
    )
    sb.add_argument(
        "--rate-fps", type=float, default=0.0,
        help="pace a --broadcast publish loop (0 = free-run)",
    )
    sb.set_defaults(func=cmd_submit)

    ss = sub.add_parser(
        "sessions", help="list, cancel, or shut down wall-service sessions"
    )
    ss.add_argument("rundir", help="the daemon's run directory")
    ss.add_argument("--transport", choices=["unix", "tcp"], default="unix")
    ss.add_argument("--cancel", type=int, help="cancel this session id")
    ss.add_argument("--shutdown", action="store_true", help="stop the daemon")
    ss.add_argument(
        "--reason", default="cli request", help="reason recorded in the trace"
    )
    ss.set_defaults(func=cmd_sessions)

    fl = sub.add_parser(
        "fleet", help="sharded multi-daemon serving behind one gateway"
    )
    fsub = fl.add_subparsers(dest="fleet_command", required=True)

    fs = fsub.add_parser("serve", help="run a gateway plus N wall daemons")
    fs.add_argument("rundir", help="gateway run directory (daemons nest under it)")
    fs.add_argument("--daemons", type=int, default=2)
    fs.add_argument(
        "--capacity", type=float, default=400.0,
        help="per-daemon decode capacity in Mpixel/s",
    )
    fs.add_argument("--workers", type=int, default=2, help="per-daemon workers")
    fs.add_argument("--queue-slots", type=int, default=4)
    fs.add_argument("--transport", choices=["unix", "tcp"], default="unix")
    fs.add_argument(
        "--no-reliable-links", action="store_true",
        help="plain channels for gateway<->daemon RPC (no reconnect-resume)",
    )
    fs.set_defaults(func=cmd_fleet_serve)

    ft = fsub.add_parser("status", help="gateway, daemon, and session state")
    ft.add_argument("rundir", help="the gateway's run directory")
    ft.add_argument("--transport", choices=["unix", "tcp"], default="unix")
    ft.add_argument("--json", action="store_true")
    ft.set_defaults(func=cmd_fleet_status)

    fd = fsub.add_parser(
        "drain", help="drain (or undrain) one daemon for maintenance"
    )
    fd.add_argument("rundir", help="the gateway's run directory")
    fd.add_argument("--daemon", required=True, help="daemon name, e.g. daemon0")
    fd.add_argument("--undo", action="store_true", help="undrain instead")
    fd.add_argument("--reason", default="cli request")
    fd.add_argument("--transport", choices=["unix", "tcp"], default="unix")
    fd.set_defaults(func=cmd_fleet_drain)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
