"""Simulated PC-cluster node model."""

from repro.cluster.node import Node, NodeSpec, ClusterSpec, PRINCETON_WALL

__all__ = ["Node", "NodeSpec", "ClusterSpec", "PRINCETON_WALL"]
