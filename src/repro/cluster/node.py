"""Simulated cluster nodes (the PCs of the Princeton Display Wall).

A :class:`Node` owns a CPU (a speed factor relative to the 733 MHz
Pentium III decoder workstations) and a GM port.  ``compute()`` charges
modeled CPU time, scaled by the node's speed; busy time is accumulated for
utilization reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.gm import GMNetwork, GMPort
from repro.net.simtime import Simulator, Timeout


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one PC."""

    name: str
    cpu_mhz: float = 733.0
    ram_mb: int = 256

    @property
    def speed(self) -> float:
        """Speed relative to the 733 MHz reference decoder node."""
        return self.cpu_mhz / 733.0


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster: console + workers, all on one Myrinet fabric."""

    console: NodeSpec
    worker: NodeSpec
    n_workers: int

    def node_spec(self, node_id: int) -> NodeSpec:
        return self.console if node_id == 0 else self.worker


#: The paper's test platform (§5.1): 550 MHz PIII console with 1 GB SDRAM,
#: 733 MHz PIII / 256 MB RDRAM workstations, 25 PCs on Myrinet.
PRINCETON_WALL = ClusterSpec(
    console=NodeSpec("console", cpu_mhz=550.0, ram_mb=1024),
    worker=NodeSpec("workstation", cpu_mhz=733.0, ram_mb=256),
    n_workers=24,
)


class Node:
    """One simulated PC: CPU + NIC port."""

    def __init__(
        self,
        sim: Simulator,
        net: GMNetwork,
        node_id: int,
        spec: Optional[NodeSpec] = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.spec = spec or NodeSpec(f"node{node_id}")
        self.port: GMPort = net.port(node_id)
        self.busy_time = 0.0

    def compute(self, seconds: float):
        """Process helper: charge ``seconds`` of reference-CPU work."""
        dt = seconds / self.spec.speed
        self.busy_time += dt
        yield Timeout(dt)

    def utilization(self, duration: float) -> float:
        return self.busy_time / duration if duration > 0 else 0.0
