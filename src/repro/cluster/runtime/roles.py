"""Process roles of the 1-k-(m,n) cluster: root, splitter, tile decoder.

Each role function is the body of one OS process (spawned by the
supervisor via :mod:`repro.cluster.runtime.worker`).  The control flow is
the same deadlock-free protocol the threaded runner demonstrates —
ack-credit flow control between root and splitters, ANID ack redirection
serializing sub-picture delivery, pre-calculated MEI block exchange
between decoders — but every queue is now a socket channel and every
actor a process, so decoding runs on real cores with no shared GIL.

Connection topology (arrows point from dialer to listener)::

    root ──► split[s]                 pictures down, credits back
    split[s] ──► dec[t]               sub-pictures down, ANID acks back
    dec[t] ──► dec[u<t]               reference blocks, both directions
    dec[t] ──► collector              tile frame crops, EOS, errors

Every process creates its listener first, then dials with bounded
retry-and-backoff, then labels inbound connections by their HELLO
message — so the supervisor can start the whole tree at once without an
ordered handshake.  All channels run heartbeats; a peer that dies is
detected as :class:`~repro.net.channel.ChannelClosed` (socket reset) or
:class:`~repro.net.channel.PeerDeadError` (hung: silent past
``dead_after``) instead of hanging the protocol.
"""

from __future__ import annotations

import os
import queue
import signal
import threading
import time
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from repro.cluster.runtime.config import WallConfig
from repro.cluster.runtime.messages import (
    MSG_ACK,
    MSG_BLOCK,
    MSG_BLOCK_H,
    MSG_CREDIT,
    MSG_EOS,
    MSG_ERROR,
    MSG_FRAME,
    MSG_FRAME_H,
    MSG_HELLO,
    MSG_LAYOUT,
    MSG_PICTURE,
    MSG_PLAN,
    MSG_PLAN_H,
    MSG_REPORT,
    MSG_SEQ,
    MSG_SUBPICTURE,
    block_nbytes,
    decode_block,
    decode_block_hmsg,
    decode_hello_full,
    decode_picture,
    decode_plan_hmsg,
    decode_plan_msg,
    decode_report,
    decode_sequence,
    decode_subpicture,
    encode_block,
    encode_block_hmsg,
    encode_error,
    encode_hello,
    encode_picture,
    encode_plan_hmsg,
    encode_plan_msg,
    encode_report,
    encode_sequence,
    encode_subpicture,
    encode_tile_frame,
    encode_tile_frame_hmsg,
    tile_frame_nbytes,
    write_block_into,
    write_tile_frame_into,
)
from repro.mem import FramePool, PoolError, PoolExhausted, PoolRegistry
from repro.mpeg2 import plan_codec
from repro.mpeg2.constants import PictureType
from repro.mpeg2.motion import Rect
from repro.mpeg2.parser import PictureScanner
from repro.mpeg2.plan_codec import buffers_nbytes, plan_nbytes
from repro.net.channel import (
    Address,
    Channel,
    ChannelClosed,
    ChannelError,
    ChannelTimeout,
    CreditGate,
    Listener,
    connect,
)
from repro.parallel.mb_splitter import MacroblockSplitter
from repro.parallel.partition import (
    LayoutSchedule,
    LayoutUpdate,
    build_controller,
    is_repartition_point,
)
from repro.parallel.pdecoder import TileDecoder
from repro.parallel.subpicture import SubPicture
from repro.perf.telemetry import (
    emit_stats,
    maybe_emit_stats,
    registry,
    stage_span_block,
    traced_stage,
)
from repro.perf.trace import TraceWriter
from repro.wall.layout import TileLayout

STREAM_FILE = "stream.m2v"
CONFIG_FILE = "cluster.json"


class ProtocolError(RuntimeError):
    """The peer violated the 1-k-(m,n) protocol (ordering, routing)."""


# --------------------------------------------------------------------- #
# rendezvous: name -> address, rooted at the run directory
# --------------------------------------------------------------------- #


class Rendezvous:
    """Address book for the process tree.

    Unix transport: socket paths are derived from process names, so a
    dialer just retries until the listener has bound.  TCP transport:
    listeners bind an ephemeral port and publish ``{name}.addr``; dialers
    poll for the file.
    """

    def __init__(self, rundir: Path, transport: str, connect_timeout: float):
        self.rundir = Path(rundir)
        self.transport = transport
        self.connect_timeout = connect_timeout

    def listen(self, name: str) -> Listener:
        if self.transport == "unix":
            lst = Listener(("unix", str(self.rundir / f"{name}.sock")))
        else:
            lst = Listener(("tcp", "127.0.0.1", 0))
            host, port = lst.address[1], lst.address[2]
            tmp = self.rundir / f"{name}.addr.tmp"
            tmp.write_text(f"{host} {port}")
            tmp.rename(self.rundir / f"{name}.addr")  # atomic publish
        return lst

    def resolve(self, name: str) -> Address:
        if self.transport == "unix":
            return ("unix", str(self.rundir / f"{name}.sock"))
        path = self.rundir / f"{name}.addr"
        deadline = time.monotonic() + self.connect_timeout
        while not path.exists():
            if time.monotonic() >= deadline:
                raise ChannelTimeout(f"no address published for {name!r}")
            time.sleep(0.02)
        host, port = path.read_text().split()
        return ("tcp", host, int(port))

    def dial(self, peer: str, me: str, cfg: WallConfig) -> Channel:
        ch = connect(
            self.resolve(peer),
            timeout=self.connect_timeout,
            policy=cfg.connect_policy,
            name=f"{me}->{peer}",
            dead_after=cfg.dead_after,
        )
        ch.send(MSG_HELLO, encode_hello(me, _hello_features(cfg, ch)))
        # Symmetric handshake: the accepter replies with its own HELLO so
        # both ends learn the other's capabilities (shm handle support).
        reply = ch.recv(timeout=self.connect_timeout)
        if reply.type != MSG_HELLO:
            ch.close()
            raise ProtocolError(
                f"{me}: {peer} answered {reply.type}, not HELLO"
            )
        _name, ch.peer_features = decode_hello_full(reply.payload)
        ch.start_heartbeat(cfg.heartbeat_interval)
        return ch


def _hello_features(cfg: WallConfig, ch: Channel) -> dict:
    """Capabilities advertised in HELLO: shm handles need the pool flag on,
    a unix transport, and a provably same-host socket."""
    if cfg.pool_enabled and ch.is_local:
        return {"shm_pool": True}
    return {}


def accept_labeled(
    lst: Listener, me: str, cfg: WallConfig, timeout: float
) -> Tuple[str, Channel]:
    """Accept one connection, read its HELLO, and reply with our own."""
    ch = lst.accept(timeout=timeout, dead_after=cfg.dead_after)
    hello = ch.recv(timeout=timeout)
    if hello.type != MSG_HELLO:
        ch.close()
        raise ProtocolError(f"{me}: first message was {hello.type}, not HELLO")
    peer, ch.peer_features = decode_hello_full(hello.payload)
    ch.name = f"{me}<-{peer}"
    ch.send(MSG_HELLO, encode_hello(me, _hello_features(cfg, ch)))
    ch.start_heartbeat(cfg.heartbeat_interval)
    return peer, ch


def _maybe_fail(cfg: WallConfig, name: str, picture: int) -> None:
    """Fault injection: die abruptly (SIGKILL) at the configured picture."""
    spec = cfg.parsed_fail_at()
    if spec is not None and spec == (name, picture):
        os.kill(os.getpid(), signal.SIGKILL)


def _pump(ch: Channel, out_q: "queue.Queue", label: str) -> threading.Thread:
    """Reader thread: forward every inbound message (and the terminal
    condition) into a queue the role's main loop consumes."""

    def run() -> None:
        try:
            while True:
                out_q.put(("msg", label, ch.recv()))
        except ChannelClosed:
            out_q.put(("closed", label, None))
        except ChannelError as exc:
            out_q.put(("error", label, exc))

    t = threading.Thread(target=run, name=f"pump:{ch.name}", daemon=True)
    t.start()
    return t


def _get(q: "queue.Queue", timeout: float, what: str):
    try:
        return q.get(timeout=timeout)
    except queue.Empty:
        raise ChannelTimeout(f"timed out after {timeout:.1f}s waiting for {what}")


# --------------------------------------------------------------------- #
# shared-memory pool plumbing
# --------------------------------------------------------------------- #


def _create_pool(cfg: WallConfig, name: str, classes, tracer: TraceWriter):
    """Best-effort owner-side pool creation.

    A missing token, an exhausted tmpfs, or any other segment failure
    degrades to ``None`` — the caller ships by value, output unchanged.
    Workers never unlink their pools; the supervisor purges every segment
    carrying the run's token after the tree is down (crash-safe even for
    SIGKILLed owners).
    """
    if not cfg.pool_enabled or not cfg.pool_token:
        return None
    try:
        pool = FramePool.create(
            f"{cfg.pool_token}-{name}",
            classes,
            shm_dir=Path(cfg.shm_dir) if cfg.shm_dir else None,
        )
    except (OSError, PoolError, ValueError) as exc:
        tracer.emit("pool_unavailable", proc=name, error=repr(exc))
        return None
    tracer.emit("pool_created", pool=pool.name, slabs=pool.n_slabs)
    return pool


def _plan_slab_bytes(layout: TileLayout, whole_raster: bool = False) -> int:
    """Worst-case per-tile plan wire size: every macroblock whose 16x16
    raster rect intersects the tile rect, all-coded with 6 blocks each.

    ``whole_raster=True`` sizes for an adaptive partition, where a tile
    may grow arbitrarily (bounded by the raster itself) between GOPs.
    """
    if whole_raster:
        n_mb = (layout.width // 16) * (layout.height // 16)
        return plan_codec.plan_wire_bound(n_mb, 6 * n_mb)
    worst = 0
    for t in layout:
        r = t.rect
        mw = -(-r.x1 // 16) - (r.x0 // 16)
        mh = -(-r.y1 // 16) - (r.y0 // 16)
        n_mb = mw * mh
        worst = max(worst, plan_codec.plan_wire_bound(n_mb, 6 * n_mb))
    return worst


#: Decoder-pool slab geometry: boundary blocks are at most one 17x17 luma
#: piece + two 9x9 chroma pieces (~450 B), so small slabs; the count covers
#: a few pictures' worth of in-flight exchanges before falling back.
BLOCK_SLAB_BYTES = 512
BLOCK_SLAB_COUNT = 256
#: Tile-frame crops in flight to the collector before falling back.
FRAME_SLAB_COUNT = 8


# --------------------------------------------------------------------- #
# root splitter
# --------------------------------------------------------------------- #


def run_root(cfg: WallConfig, rundir: Path, tracer: TraceWriter) -> None:
    """Scan the stream, round-robin pictures to splitters under credits."""
    rv = Rendezvous(rundir, cfg.transport, cfg.connect_timeout)
    stream = (rundir / STREAM_FILE).read_bytes()
    sequence, pictures = PictureScanner(stream).scan()

    # Adaptive partitioning: the controller ingests MSG_REPORT telemetry
    # (arriving on the credit back-channels) and issues versioned layout
    # updates at closed-GOP boundaries.  None under the static policy.
    base_layout = TileLayout(
        sequence.width, sequence.height, cfg.m, cfg.n, cfg.overlap
    )
    controller = build_controller(
        cfg.partition_policy, base_layout, ewma=cfg.partition_ewma
    )

    # Broadcast tee: the root publishes every coded picture once on the
    # one-to-many channel (wall receivers subscribe and self-decode their
    # tiles) in addition to the unicast splitter dispatch below.
    publisher = None
    if cfg.bcast_addr:
        from repro.wall.broadcast import WallBroadcaster
        from repro.wall.config import WallSpec

        publisher = WallBroadcaster(
            stream,
            WallSpec(cols=cfg.m, rows=cfg.n, overlap=cfg.overlap),
            ("unix", cfg.bcast_addr),
            mode="stream",
            fps=cfg.bcast_fps,
            name="root-bcast",
        )
        publisher.publish_sequence()
        tracer.emit(
            "bcast_open", address=cfg.bcast_addr, anchors=len(publisher.anchors)
        )

    channels: Dict[int, Channel] = {}
    gates: Dict[int, CreditGate] = {}
    for s in range(cfg.k):
        channels[s] = rv.dial(f"split{s}", "root", cfg)
        gates[s] = CreditGate(cfg.queue_depth)
        tracer.emit("connect", peer=f"split{s}")
    for s in range(cfg.k):
        channels[s].send(MSG_SEQ, encode_sequence(sequence))

    def credit_pump(s: int) -> threading.Thread:
        def run() -> None:
            ch = channels[s]
            try:
                while True:
                    msg = ch.recv()
                    if msg.type == MSG_CREDIT:
                        gates[s].release()
                    elif msg.type == MSG_REPORT and controller is not None:
                        controller.ingest(decode_report(msg.payload))
            except ChannelError as exc:
                gates[s].poison(exc)

        t = threading.Thread(target=run, name=f"credits:split{s}", daemon=True)
        t.start()
        return t

    pumps = [credit_pump(s) for s in range(cfg.k)]

    for i, unit in enumerate(pictures):
        _maybe_fail(cfg, "root", i)
        # Pipeline-ingress stamp (wall clock: the one base every process
        # shares): taken before the credit wait so upstream backpressure
        # is part of the picture's end-to-end latency.
        t_ingress = time.time()
        if unit.new_gop:
            tracer.emit(
                "gop",
                picture=i,
                closed=bool(unit.gop is not None and unit.gop.closed_gop),
            )
        if controller is not None:
            upd = controller.maybe_update(i, unit)
            if upd is not None:
                # Broadcast BEFORE dispatching picture i: per-channel FIFO
                # guarantees every splitter sees the update ahead of any
                # picture >= effective_from it will handle.
                payload = upd.encode()
                for s in range(cfg.k):
                    channels[s].send(MSG_LAYOUT, payload, picture=i)
                tracer.emit(
                    "layout_update",
                    picture=i,
                    version=upd.version,
                    x_bounds=list(upd.x_bounds),
                    y_bounds=list(upd.y_bounds),
                )
        a = i % cfg.k
        nsid = (a + 1) % cfg.k
        t0 = time.perf_counter()
        with tracer.span("credit_wait", picture=i, splitter=a):
            gates[a].acquire(cfg.recv_timeout)
        waited = time.perf_counter() - t0
        with tracer.span("dispatch", picture=i, splitter=a):
            channels[a].send(
                MSG_PICTURE, encode_picture(nsid, unit, t_ingress), picture=i
            )
        tracer.emit(
            "picture_sent",
            picture=i,
            splitter=a,
            bytes=unit.size_bytes,
            credit_wait_s=round(waited, 6),
        )
        if publisher is not None:
            publisher.publish_picture(i)
        maybe_emit_stats(tracer)
    for s in range(cfg.k):
        channels[s].send(MSG_EOS)
    if publisher is not None:
        publisher.publish_end()
        tracer.emit("bcast_stats", **publisher.stats())
        publisher.close()
    tracer.emit(
        "credit_totals",
        **{f"split{s}": gates[s].stats_dict() for s in range(cfg.k)},
    )
    if tracer.spans:
        emit_stats(tracer)
    tracer.emit("eos_sent", pictures=len(pictures))

    # Graceful drain: wait for every splitter to finish and close, so the
    # tail of the credit backchannel is consumed rather than reset.
    deadline = time.monotonic() + cfg.recv_timeout
    for t in pumps:
        t.join(timeout=max(0.1, deadline - time.monotonic()))
    for ch in channels.values():
        ch.close()


# --------------------------------------------------------------------- #
# second-level splitter
# --------------------------------------------------------------------- #


def run_splitter(cfg: WallConfig, rundir: Path, sid: int, tracer: TraceWriter) -> None:
    """Split pictures into sub-pictures + MEI programs; serialize delivery
    by waiting for the previous picture's ANID-redirected acks."""
    rv = Rendezvous(rundir, cfg.transport, cfg.connect_timeout)
    lst = rv.listen(f"split{sid}")
    me = f"split{sid}"
    try:
        peer, root_ch = accept_labeled(lst, me, cfg, cfg.connect_timeout)
        if peer != "root":
            raise ProtocolError(f"{me}: unexpected dialer {peer!r}")
    finally:
        lst.close()

    n_tiles = cfg.n_tiles
    dec_ch: Dict[int, Channel] = {}
    for t in range(n_tiles):
        dec_ch[t] = rv.dial(f"dec{t}", me, cfg)
        tracer.emit("connect", peer=f"dec{t}")

    ack_q: "queue.Queue" = queue.Queue()
    pumps = [_pump(dec_ch[t], ack_q, f"dec{t}") for t in range(n_tiles)]

    seq_msg = root_ch.recv(cfg.connect_timeout)
    if seq_msg.type != MSG_SEQ:
        raise ProtocolError(f"{me}: expected SEQ, got {seq_msg.type}")
    sequence = decode_sequence(seq_msg.payload)
    layout = TileLayout(sequence.width, sequence.height, cfg.m, cfg.n, cfg.overlap)
    adaptive = cfg.partition_policy != "static"
    schedule = LayoutSchedule(layout)
    msplit = MacroblockSplitter(
        sequence, layout, collect_content=cfg.partition_policy == "content"
    )
    for t in range(n_tiles):
        dec_ch[t].send(MSG_SEQ, seq_msg.payload)

    # Shared-memory plan pool: one slab class sized for the worst-case
    # per-tile plan, enough slabs for every tile's in-flight pictures.
    # Under an adaptive policy a tile can grow between GOPs, so slabs are
    # sized for the whole-raster bound (a too-large plan would otherwise
    # silently fall back by value and muddy the copy accounting).
    pool = None
    if cfg.ship_plans and any(
        dec_ch[t].peer_features.get("shm_pool") for t in range(n_tiles)
    ):
        pool = _create_pool(
            cfg,
            me,
            [(
                _plan_slab_bytes(layout, whole_raster=adaptive),
                n_tiles * (cfg.queue_depth + 1),
            )],
            tracer,
        )

    def wait_acks(expect_picture: int) -> float:
        t0 = time.perf_counter()
        acked = 0
        while acked < n_tiles:
            kind, label, msg = _get(
                ack_q, cfg.recv_timeout, f"acks of picture {expect_picture}"
            )
            if kind == "closed":
                raise ChannelClosed(f"{me}: {label} disconnected during ack wait")
            if kind == "error":
                raise msg
            if msg.type == MSG_REPORT:
                # Decoder telemetry riding the ack channel: relay upstream
                # (the root's controller consumes it); not an ack.
                root_ch.send(MSG_REPORT, msg.payload)
                continue
            if msg.type != MSG_ACK:
                raise ProtocolError(f"{me}: unexpected {msg.type} from {label}")
            if msg.picture != expect_picture:
                raise ProtocolError(
                    f"{me}: ack for picture {msg.picture}, expected {expect_picture}"
                )
            acked += 1
        return time.perf_counter() - t0

    while True:
        msg = root_ch.recv(cfg.recv_timeout)
        if msg.type == MSG_EOS:
            break
        if msg.type == MSG_LAYOUT:
            # Versioned partition change from the root.  Apply to the
            # local schedule and forward to every decoder *now* — FIFO
            # order on each decoder channel guarantees the update lands
            # before any plan of a picture >= effective_from this
            # splitter will send.
            upd = LayoutUpdate.decode(msg.payload)
            schedule.apply(upd)
            for t in range(n_tiles):
                dec_ch[t].send(MSG_LAYOUT, msg.payload, picture=msg.picture)
            tracer.emit(
                "layout_recv",
                picture=upd.effective_from,
                version=upd.version,
            )
            continue
        if msg.type != MSG_PICTURE:
            raise ProtocolError(f"{me}: unexpected {msg.type} from root")
        i = msg.picture
        root_ch.send(MSG_CREDIT)  # receive buffer freed: root may send again
        _maybe_fail(cfg, me, i)
        lay = schedule.layout_for(i)
        if lay is not msplit.layout:
            msplit.set_layout(lay)
        nsid, unit, t_root = decode_picture(msg.payload)
        t0 = time.perf_counter()
        # Parent "split" span with parse/plan children synthesized from
        # the splitter's stage-time deltas across the call.
        with stage_span_block(
            tracer, msplit.stage_times, "split", picture=i,
            stages=("parse", "plan"),
        ):
            if cfg.ship_plans:
                result = msplit.split_plans(unit, i)
            else:
                result = msplit.split(unit, i)
        split_s = time.perf_counter() - t0
        if msplit.last_content is not None:
            # Content-aware policy: ship the per-column/row coded-bit
            # profile upstream (a few hundred floats per picture).
            cols, rows = msplit.last_content
            root_ch.send(
                MSG_REPORT,
                encode_report(
                    {
                        "kind": "content",
                        "picture": i,
                        "cols": [float(v) for v in cols],
                        "rows": [float(v) for v in rows],
                    }
                ),
            )
            msplit.last_content = None
        # Sub-picture delivery is serialized by the previous picture's acks,
        # redirected here via ANID — the reorder-free ordering guarantee.
        if i > 0:
            with tracer.span("ack_wait", picture=i - 1):
                ack_wait_s = wait_acks(i - 1)
        else:
            ack_wait_s = 0.0
        sent = 0
        pooled = 0
        # Second latency stamp: the split is done and the plans are about
        # to hit the decoder channels.  (t_split - t_root) is the split
        # hop, inclusive of ack serialization.
        stamps = (t_root, time.time())
        for t in range(n_tiles):
            with traced_stage(tracer, msplit.stage_times, "wire", picture=i):
                mtype = None
                if cfg.ship_plans:
                    tp = result.plans[t]
                    program = result.mei.program(t)
                    if pool is not None and dec_ch[t].peer_features.get(
                        "shm_pool"
                    ):
                        nb = plan_nbytes(tp)
                        try:
                            lease = pool.alloc(nb)
                        except PoolExhausted:
                            lease = None
                        if lease is not None:
                            plan_codec.encode_plan_into(tp, lease.buf)
                            payload = encode_plan_hmsg(
                                nsid, lease.handle, program, stamps
                            )
                            mtype = MSG_PLAN_H
                            nbytes = len(payload)
                            dec_ch[t].stats.note_handle(nb)
                            registry().counter("pool.bytes_by_handle").inc(nb)
                            pooled += nb
                    if mtype is None:
                        mtype = MSG_PLAN
                        payload = encode_plan_msg(nsid, tp, program, stamps)
                        nbytes = buffers_nbytes(payload)
                        registry().counter("pool.bytes_by_copy").inc(nbytes)
                else:
                    mtype = MSG_SUBPICTURE
                    payload = encode_subpicture(
                        nsid,
                        result.subpictures[t].serialize(),
                        result.mei.program(t),
                        stamps,
                    )
                    nbytes = len(payload)
            dec_ch[t].send(mtype, payload, picture=i)
            sent += nbytes
        tracer.emit(
            "split",
            picture=i,
            split_s=round(split_s, 6),
            ack_wait_s=round(ack_wait_s, 6),
            bytes=sent,
            pool_bytes=pooled,
        )
        maybe_emit_stats(tracer)
    for t in range(n_tiles):
        dec_ch[t].send(MSG_EOS)
    if tracer.spans:
        emit_stats(tracer)
    tracer.emit("stage_times", **msplit.stage_times.as_dict())
    if pool is not None:
        tracer.emit("pool_stats", pool=pool.name, **pool.stats.to_dict())
        pool.close()  # no unlink: consumers may still hold leases
    tracer.emit("eos_sent")
    root_ch.close()

    deadline = time.monotonic() + cfg.recv_timeout
    for t in pumps:
        t.join(timeout=max(0.1, deadline - time.monotonic()))
    for ch in dec_ch.values():
        ch.close()


# --------------------------------------------------------------------- #
# tile decoder
# --------------------------------------------------------------------- #


def run_decoder(cfg: WallConfig, rundir: Path, tid: int, tracer: TraceWriter) -> None:
    """Execute MEI sends, apply received blocks, decode sub-pictures, and
    stream displayed tile crops to the collector."""
    rv = Rendezvous(rundir, cfg.transport, cfg.connect_timeout)
    me = f"dec{tid}"
    lst = rv.listen(me)

    collector = rv.dial("collector", me, cfg)
    try:
        _decoder_body(cfg, rv, lst, collector, tid, tracer)
    except Exception as exc:
        # Best-effort rich diagnostic to the supervisor before dying; the
        # nonzero exit code is the authoritative failure signal.
        try:
            collector.send(MSG_ERROR, encode_error(me, repr(exc)))
        except ChannelError:
            pass
        raise
    finally:
        collector.close()


def _decoder_body(
    cfg: WallConfig,
    rv: Rendezvous,
    lst: Listener,
    collector: Channel,
    tid: int,
    tracer: TraceWriter,
) -> None:
    me = f"dec{tid}"
    n_tiles = cfg.n_tiles
    peers: Dict[str, Channel] = {}
    for u in range(tid):
        peers[f"dec{u}"] = rv.dial(f"dec{u}", me, cfg)
        tracer.emit("connect", peer=f"dec{u}")

    split_ch: Dict[int, Channel] = {}
    try:
        expected = cfg.k + (n_tiles - 1 - tid)
        for _ in range(expected):
            peer, ch = accept_labeled(lst, me, cfg, cfg.connect_timeout)
            if peer.startswith("split"):
                split_ch[int(peer[5:])] = ch
            elif peer.startswith("dec"):
                peers[peer] = ch
            else:
                raise ProtocolError(f"{me}: unexpected dialer {peer!r}")
            tracer.emit("accept", peer=peer)
    finally:
        lst.close()

    ctrl_q: "queue.Queue" = queue.Queue()
    blk_q: "queue.Queue" = queue.Queue()
    pumps = [_pump(ch, ctrl_q, f"split{s}") for s, ch in split_ch.items()]
    pumps += [_pump(ch, blk_q, name) for name, ch in peers.items()]

    # The sequence header cascades root -> splitters -> decoders; every
    # splitter forwards one copy and the first to arrive wins.
    sequence = None
    pre_eos: List[tuple] = []
    while sequence is None:
        kind, label, msg = _get(ctrl_q, cfg.connect_timeout, "sequence header")
        if kind == "error":
            raise msg
        if kind == "closed":
            raise ChannelClosed(f"{me}: {label} disconnected before SEQ")
        if msg.type == MSG_SEQ:
            sequence = decode_sequence(msg.payload)
        else:
            pre_eos.append((kind, label, msg))
    for item in pre_eos:  # anything that raced ahead of the first SEQ
        ctrl_q.put(item)

    layout = TileLayout(sequence.width, sequence.height, cfg.m, cfg.n, cfg.overlap)
    adaptive = cfg.partition_policy != "static"
    schedule = LayoutSchedule(layout)
    cur_layout = layout
    dec = TileDecoder(
        layout.tile(tid),
        layout,
        sequence,
        batch_reconstruct=cfg.batch_reconstruct,
    )
    partition = layout.tile(tid).partition
    # The partition a frame ships with is the one in force when it was
    # *decoded*: the held anchor may ship after a repartition boundary,
    # so its crop geometry travels with it.  Latency stamps follow the
    # same rule — a held anchor ships with the (t_root, t_split) of the
    # picture it *is*, not of the B picture that released it.
    held_partition = partition
    held_stamps = (0.0, 0.0)
    display_idx = 0

    # Shared-memory plumbing: ``pools`` attaches to peers' segments on the
    # receive side; ``pool`` is this decoder's own (boundary blocks for
    # peer decoders, tile-frame crops for the collector).  Adaptive
    # partitions can grow a tile between GOPs, so the frame slab class is
    # then sized for the whole-raster crop bound.
    pools = PoolRegistry(Path(cfg.shm_dir) if cfg.shm_dir else None) if cfg.pool_enabled else None
    slab_nb = (
        tile_frame_nbytes(Rect(0, 0, sequence.width, sequence.height))
        if adaptive
        else tile_frame_nbytes(partition)
    )
    pool = None
    if cfg.pool_enabled and (
        collector.peer_features.get("shm_pool")
        or any(ch.peer_features.get("shm_pool") for ch in peers.values())
    ):
        pool = _create_pool(
            cfg,
            me,
            [(BLOCK_SLAB_BYTES, BLOCK_SLAB_COUNT), (slab_nb, FRAME_SLAB_COUNT)],
            tracer,
        )

    def ship(frame, part, in_stamps=(0.0, 0.0)) -> None:
        nonlocal display_idx
        frame_nb = tile_frame_nbytes(part)
        # Third latency stamp: the decoded tile leaves for the collector.
        stamps = (*in_stamps, time.time())
        with traced_stage(tracer, dec.stage_times, "wire", picture=display_idx):
            lease = None
            if pool is not None and collector.peer_features.get("shm_pool"):
                try:
                    lease = pool.alloc(frame_nb)
                except PoolExhausted:
                    lease = None
            if lease is not None:
                write_tile_frame_into(frame, part, lease.buf)
                payload = encode_tile_frame_hmsg(tid, part, lease.handle, stamps)
                mtype = MSG_FRAME_H
                wire_bytes = len(payload)
            else:
                payload = encode_tile_frame(tid, part, frame, stamps)
                mtype = MSG_FRAME
                wire_bytes = buffers_nbytes(payload)
        collector.send(mtype, payload, picture=display_idx, sender=tid)
        if lease is not None:
            collector.stats.note_handle(frame_nb)
            registry().counter("pool.bytes_by_handle").inc(frame_nb)
        else:
            registry().counter("pool.bytes_by_copy").inc(wire_bytes)
        tracer.emit(
            "frame_sent",
            picture=display_idx,
            bytes=wire_bytes,
            pool_bytes=frame_nb if lease is not None else 0,
        )
        display_idx += 1

    held_back: Dict[int, List] = {}
    eos_from: set = set()
    closed: set = set()
    i = 0
    while len(eos_from) < cfg.k:
        kind, label, msg = _get(ctrl_q, cfg.recv_timeout, f"sub-picture {i}")
        if kind == "error":
            raise msg
        if kind == "closed":
            if label in eos_from:
                closed.add(label)  # orderly: EOS then close
                continue
            raise ChannelClosed(f"{me}: {label} disconnected mid-stream")
        if msg.type == MSG_SEQ:
            continue  # duplicate copies from the other splitters
        if msg.type == MSG_EOS:
            eos_from.add(label)
            continue
        if msg.type == MSG_LAYOUT:
            # Versioned repartition notice.  FIFO ordering guarantees it
            # precedes the plans of its effective_from picture on this
            # channel; the schedule dedupes the copies the other
            # splitters forward.
            schedule.apply(LayoutUpdate.decode(msg.payload))
            continue
        if msg.type not in (MSG_SUBPICTURE, MSG_PLAN, MSG_PLAN_H):
            raise ProtocolError(f"{me}: unexpected {msg.type} from {label}")

        _maybe_fail(cfg, me, msg.picture)
        if msg.picture != i:
            raise ProtocolError(
                f"{me}: picture {msg.picture} arrived, expected {i} "
                "(ordering broken)"
            )
        lay = schedule.layout_for(i)
        if lay is not cur_layout:
            # Closed-GOP boundary: swap tile geometry in place.  The
            # reference planes are full-raster, so no pixel state moves —
            # only which macroblocks arrive and which crop ships changes.
            cur_layout = lay
            new_tile = lay.tile(tid)
            dec.retile(new_tile, lay)
            partition = new_tile.partition
            tracer.emit(
                "repartition",
                picture=i,
                version=schedule.version_for(i),
                rect=[partition.x0, partition.y0, partition.x1, partition.y1],
            )
        plan_handle = None
        if msg.type == MSG_PLAN_H:
            with traced_stage(tracer, dec.stage_times, "wire", picture=i):
                anid, expected_recvs, plan_handle, program, in_stamps = (
                    decode_plan_hmsg(msg.payload)
                )
                # Zero-copy decode straight out of the splitter's slab;
                # the handle is released only after the plan executes.
                tp, _end = plan_codec.decode_plan(
                    pools.view(plan_handle), dec.matrices
                )
            sp = None
            ptype = tp.picture_type
        elif msg.type == MSG_PLAN:
            with traced_stage(tracer, dec.stage_times, "wire", picture=i):
                anid, expected_recvs, tp, program, in_stamps = decode_plan_msg(
                    msg.payload, dec.matrices
                )
            sp = None
            ptype = tp.picture_type
        else:
            anid, expected_recvs, sp_bytes, program, in_stamps = decode_subpicture(
                msg.payload
            )
            sp = SubPicture.deserialize(sp_bytes)
            ptype = sp.picture_type
        # Ack to the *next* splitter (ANID), releasing picture i+1.
        split_ch[anid].send(MSG_ACK, picture=i, sender=tid)

        t0 = time.perf_counter()
        c0 = time.thread_time()
        served = 0
        with tracer.span("serve", picture=i):
            for block in dec.execute_sends(program, ptype):
                ch = peers[f"dec{block.dest}"]
                bnb = block_nbytes(block)
                lease = None
                if (
                    pool is not None
                    and bnb > 0
                    and ch.peer_features.get("shm_pool")
                ):
                    try:
                        lease = pool.alloc(bnb)
                    except PoolExhausted:
                        lease = None
                if lease is not None:
                    write_block_into(block, lease.buf)
                    ch.send(
                        MSG_BLOCK_H,
                        encode_block_hmsg(block, lease.handle),
                        picture=i,
                        sender=tid,
                    )
                    ch.stats.note_handle(bnb)
                    registry().counter("pool.bytes_by_handle").inc(bnb)
                else:
                    ch.send(
                        MSG_BLOCK, encode_block(block), picture=i, sender=tid
                    )
                    registry().counter("pool.bytes_by_copy").inc(bnb)
                served += block.nbytes
        serve_s = time.perf_counter() - t0
        serve_cpu = time.thread_time() - c0

        t0 = time.perf_counter()
        # The MEI exchange barrier: this tile cannot reconstruct until every
        # remote reference block of picture i has arrived.
        with tracer.span("exchange_wait", picture=i):
            # Per-source debt ledger: a closed peer that still owes this
            # picture blocks is a death, not an orderly EOF — fail fast
            # instead of sitting out the full receive timeout.
            owed = Counter(f"dec{src}" for _, src in program.recvs)
            pending = held_back.pop(i, [])
            for block, bh in pending:
                dec.apply_recv(block, ptype)
                if bh is not None:
                    pools.release(bh)
                owed[f"dec{block.src}"] -= 1
            got = len(pending)
            for name in closed:
                if owed.get(name, 0) > 0:
                    raise ChannelClosed(
                        f"{me}: {name} died owing blocks of picture {i}"
                    )
            while got < expected_recvs:
                bkind, blabel, bmsg = _get(
                    blk_q, cfg.recv_timeout, f"blocks of picture {i}"
                )
                if bkind == "error":
                    raise bmsg
                if bkind == "closed":
                    closed.add(blabel)
                    if owed.get(blabel, 0) > 0:
                        raise ChannelClosed(
                            f"{me}: {blabel} died owing blocks of picture {i}"
                        )
                    continue
                if bmsg.type == MSG_BLOCK_H:
                    block, bh = decode_block_hmsg(bmsg.payload, pools.view)
                else:
                    block, bh = decode_block(bmsg.payload), None
                if bmsg.picture == i:
                    dec.apply_recv(block, ptype)
                    if bh is not None:
                        pools.release(bh)
                    owed[f"dec{block.src}"] -= 1
                    got += 1
                else:
                    held_back.setdefault(bmsg.picture, []).append((block, bh))
        wait_remote_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        c0 = time.thread_time()
        # Parent "decode" span; parse/plan/execute children are synthesized
        # from the decoder's stage-time deltas so the timeline attribution
        # matches load_stage_times exactly, even on the bitstream path
        # where the stages interleave per record.
        with stage_span_block(
            tracer, dec.stage_times, "decode", picture=i,
            stages=("parse", "plan", "execute"),
        ):
            ready = dec.decode_plan(tp) if sp is None else dec.decode_subpicture(sp)
        if plan_handle is not None:
            # The plan's arrays were zero-copy views into the splitter's
            # slab; execution is done, so give the slab back.
            pools.release(plan_handle)
        decode_s = time.perf_counter() - t0
        # CPU time excludes scheduler preemption: on an oversubscribed box
        # the wall spans of concurrent decoders absorb each other's work,
        # but thread CPU time stays an honest per-tile cost measure — it is
        # what the imbalance accounting and the feedback policy consume.
        busy_cpu = serve_cpu + (time.thread_time() - c0)
        tracer.emit(
            "decode",
            picture=i,
            ptype=ptype.name,
            serve_s=round(serve_s, 6),
            wait_remote_s=round(wait_remote_s, 6),
            decode_s=round(decode_s, 6),
            cpu_s=round(busy_cpu, 6),
            served_bytes=served,
        )
        if cfg.partition_policy == "feedback":
            # Telemetry upstream: per-picture busy time rides the ack
            # channel to the next splitter, which relays it to the root's
            # partition controller.
            split_ch[anid].send(
                MSG_REPORT,
                encode_report(
                    {
                        "kind": "exec",
                        "picture": i,
                        "tile": tid,
                        "busy_s": round(busy_cpu, 6),
                    }
                ),
                picture=i,
                sender=tid,
            )
        # A B picture ships immediately under the current partition; an
        # anchor releases the *previous* held anchor, which was decoded
        # under ``held_partition`` (possibly one repartition ago).
        if ptype == PictureType.B:
            out_part = partition
            out_stamps = in_stamps
        else:
            out_part = held_partition
            held_partition = partition
            out_stamps = held_stamps
            held_stamps = in_stamps
        if ready is not None:
            ship(ready, out_part, out_stamps)
        maybe_emit_stats(tracer)
        i += 1

    tail = dec.flush()
    if tail is not None:
        ship(tail, held_partition, held_stamps)
    dec.stage_times.pictures = dec.stats.pictures_decoded
    if tracer.spans:
        emit_stats(tracer)
    tracer.emit("stage_times", **dec.stage_times.as_dict())
    if pool is not None:
        tracer.emit("pool_stats", pool=pool.name, **pool.stats.to_dict())
        pool.close()  # no unlink: the collector may still hold frame leases
    if pools is not None:
        pools.close()
    collector.send(MSG_EOS, sender=tid)

    for ch in split_ch.values():
        ch.close()
    for ch in peers.values():
        ch.close()
    deadline = time.monotonic() + 1.0
    for t in pumps:
        t.join(timeout=max(0.05, deadline - time.monotonic()))
