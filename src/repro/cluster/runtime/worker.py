"""Worker process entrypoint: ``python -m repro.cluster.runtime.worker``.

The supervisor spawns one of these per cluster role.  The worker reads
the run directory's ``cluster.json``, opens its own JSONL trace stream,
and runs its role; any uncaught exception is traced, printed to stderr
(which the supervisor captures to ``{name}.log``), and converted to a
nonzero exit code — the supervisor's authoritative failure signal.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import traceback
from pathlib import Path
from typing import List, Optional

from repro.cluster.runtime.config import WallConfig
from repro.cluster.runtime.roles import (
    CONFIG_FILE,
    run_decoder,
    run_root,
    run_splitter,
)
from repro.perf.trace import TRACE_SUFFIX, TraceWriter


def _pin(cfg: WallConfig, name: str) -> None:
    """Pin this worker to one core, round-robin over the affinity mask.

    Decoders are the hot processes, so they claim cores first (one each,
    wrapping); root and the splitters share the remaining slots.  On a
    box with fewer cores than workers this degrades to plain sharing —
    pinning never *removes* parallelism, it only stops the scheduler from
    stacking two decoders on one core while another sits idle.
    """
    cores = sorted(os.sched_getaffinity(0))
    if len(cores) < 2:
        return
    order = [f"dec{t}" for t in range(cfg.n_tiles)] + [
        "root"
    ] + [f"split{s}" for s in range(cfg.k)]
    try:
        idx = order.index(name)
    except ValueError:
        return
    os.sched_setaffinity(0, {cores[idx % len(cores)]})


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(prog="repro-cluster-worker")
    ap.add_argument("--dir", required=True, help="run directory (rendezvous root)")
    ap.add_argument("--name", required=True, help="process name, e.g. dec3")
    args = ap.parse_args(argv)

    rundir = Path(args.dir)
    name = args.name
    cfg = WallConfig.from_dict(
        json.loads((rundir / CONFIG_FILE).read_text())["config"]
    )
    if cfg.pin_cores and hasattr(os, "sched_setaffinity"):
        _pin(cfg, name)
    # Context manager: even if the role body raises (or the emit of the
    # error event itself fails), the file handle is closed and the last
    # buffered line flushed — a crashing worker cannot leak the handle.
    with TraceWriter(
        rundir / f"{name}{TRACE_SUFFIX}", name, spans=cfg.telemetry
    ) as tracer:
        tracer.emit("start", pid=os.getpid(), role=name.rstrip("0123456789"))
        try:
            if name == "root":
                run_root(cfg, rundir, tracer)
            elif name.startswith("split"):
                run_splitter(cfg, rundir, int(name[5:]), tracer)
            elif name.startswith("dec"):
                run_decoder(cfg, rundir, int(name[3:]), tracer)
            else:
                raise ValueError(f"unknown worker name {name!r}")
            tracer.emit("exit")
        except Exception as exc:
            tracer.emit("error", error=repr(exc))
            traceback.print_exc(file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
