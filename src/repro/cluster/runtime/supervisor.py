"""Cluster supervisor: spawn the process tree, collect frames, tear down.

:class:`ClusterSupervisor` is the driver-side half of the runtime.  For
one decode it:

1. materializes a *run directory* (the rendezvous root): the encoded
   stream, ``cluster.json``, per-process trace/log files, and — for the
   Unix transport — the socket files themselves;
2. binds the collector listener, then spawns ``1 + k + m*n`` worker
   processes (``python -m repro.cluster.runtime.worker``);
3. accepts one channel per tile decoder and collects displayed tile
   crops until every picture is assembled, polling child liveness the
   whole time — a crashed worker becomes a :class:`ClusterError` with a
   per-process diagnostic report, never a hang;
4. drains EOS, waits for children to exit (escalating terminate → kill
   past the deadline), and merges every per-process trace into one
   wall-clock timeline (``merged.trace.jsonl``).

The output is bit-identical to the sequential decoder — the same golden
assertion the threaded runner carries, now across process boundaries.
"""

from __future__ import annotations

import json
import os
import queue
import subprocess
import sys
import tempfile
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional

from repro.cluster.runtime.config import WallConfig
from repro.cluster.runtime.messages import (
    MSG_EOS,
    MSG_ERROR,
    MSG_FRAME,
    MSG_FRAME_H,
    decode_error,
    decode_tile_frame,
    decode_tile_frame_hmsg,
)
from repro.mem import PoolRegistry, purge_pools
from repro.cluster.runtime.roles import (
    CONFIG_FILE,
    STREAM_FILE,
    Rendezvous,
    accept_labeled,
    _pump,
)
from repro.mpeg2.frames import Frame
from repro.mpeg2.parser import PictureScanner
from repro.net.channel import Channel, ChannelTimeout, Listener
from repro.perf.export import span_tail, write_chrome_trace
from repro.perf.metrics import StageTimes
from repro.perf.telemetry import emit_stats, registry
from repro.perf.trace import (
    TRACE_SUFFIX,
    TraceWriter,
    load_stage_times,
    merge_traces,
    read_trace_file,
)
from repro.wall.layout import TileLayout

MERGED_TRACE = "merged.trace.jsonl"
PERFETTO_TRACE = "trace.perfetto.json"

#: How many trailing trace events the crash post-mortem shows per process.
POSTMORTEM_EVENTS = 8


class ClusterError(RuntimeError):
    """A worker failed (or timed out); carries the diagnostic report."""

    def __init__(self, message: str, report: str = ""):
        super().__init__(message + (f"\n{report}" if report else ""))
        self.report = report


def _repro_pythonpath() -> str:
    """PYTHONPATH that lets a bare interpreter import this package."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH", "")
    return src_root + (os.pathsep + existing if existing else "")


class ClusterSupervisor:
    """Run the 1-k-(m,n) pipeline as real OS processes and supervise it."""

    def __init__(self, config: WallConfig, trace_dir: Optional[str] = None):
        self.config = config
        self.trace_dir = trace_dir
        self.rundir: Optional[Path] = None
        self.processes: Dict[str, subprocess.Popen] = {}
        self.stage_times = StageTimes()  # aggregated from decoder traces
        self.stage_times_by_proc: Dict[str, StageTimes] = {}
        self.merged_trace_path: Optional[Path] = None
        self.perfetto_path: Optional[Path] = None
        self._tracer: Optional[TraceWriter] = None
        self._stopped = False
        self._death_hooks: List = []
        self._deaths_notified: set = set()

    def add_death_hook(self, hook) -> None:
        """Register ``hook(proc_name, returncode)``, fired (once per child)
        when liveness polling first sees that child dead with a nonzero
        status.  This is the fleet gateway's failover trigger: a session
        daemon learns of a worker death the moment the supervisor does,
        not when the decode eventually errors out.  Hooks run on the
        polling thread and must not block."""
        self._death_hooks.append(hook)

    # ------------------------------------------------------------------ #

    def decode(self, stream: bytes, timeout: float = 120.0) -> List[Frame]:
        cfg = self.config
        sequence, pictures = PictureScanner(stream).scan()
        layout = TileLayout(sequence.width, sequence.height, cfg.m, cfg.n, cfg.overlap)
        n_pics, n_tiles = len(pictures), layout.n_tiles

        if self.trace_dir is not None:
            # Absolute: workers run with cwd *inside* the run directory and
            # receive this path on their command line.
            rundir = Path(self.trace_dir).resolve()
            rundir.mkdir(parents=True, exist_ok=True)
        else:
            rundir = Path(tempfile.mkdtemp(prefix="repro-cluster-"))
        self.rundir = rundir
        # Mint the run's pool token: workers name their shm segments
        # ``repro-pool-<token>-<proc>`` and the purge below reaps exactly
        # that namespace — even after a SIGKILL mid-lease.
        if cfg.pool_enabled and not cfg.pool_token:
            cfg.pool_token = uuid.uuid4().hex[:8]
        (rundir / STREAM_FILE).write_bytes(stream)
        (rundir / CONFIG_FILE).write_text(json.dumps({"config": cfg.to_dict()}))
        tracer = TraceWriter(rundir / f"supervisor{TRACE_SUFFIX}", "supervisor")
        self._tracer = tracer

        rv = Rendezvous(rundir, cfg.transport, cfg.connect_timeout)
        collector = rv.listen("collector")
        channels: Dict[int, Channel] = {}
        shm_dir = Path(cfg.shm_dir) if cfg.shm_dir else None
        pools = PoolRegistry(shm_dir) if cfg.pool_enabled else None
        try:
            self._spawn(rundir, tracer)
            frames = self._collect(
                collector, channels, layout, n_pics, n_tiles, timeout, tracer,
                pools,
            )
            self._shutdown(timeout, tracer)
            return frames
        except Exception:
            self._teardown(tracer)
            raise
        finally:
            for ch in channels.values():
                ch.close()
            collector.close()
            if pools is not None:
                pools.close()
            if cfg.pool_token:
                # Crash-safe leak check: every segment of this run must be
                # gone once the tree is down.  Workers deliberately never
                # unlink, so a *normal* run purges its segments here; an
                # empty /dev/shm afterwards is the leak-free invariant the
                # CI step asserts.
                removed = purge_pools(cfg.pool_token, shm_dir)
                tracer.emit("pool_purge", removed=removed)
            # Final counter snapshot: the supervisor releases every frame
            # handle it assembles, and the trace report balances leases
            # against releases across the whole process tree.
            emit_stats(tracer)
            tracer.close()
            # Lenient merge: a crashed worker may leave a torn final line;
            # the post-mortem must still see everything that did flush.
            self.merged_trace_path = rundir / MERGED_TRACE
            events = merge_traces(rundir, self.merged_trace_path, strict=False)
            self.perfetto_path = rundir / PERFETTO_TRACE
            write_chrome_trace(events, self.perfetto_path)

    # ------------------------------------------------------------------ #

    def _spawn(self, rundir: Path, tracer: TraceWriter) -> None:
        env = os.environ.copy()
        env["PYTHONPATH"] = _repro_pythonpath()
        for name in self.config.process_names:
            log = open(rundir / f"{name}.log", "wb")
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cluster.runtime.worker",
                    "--dir",
                    str(rundir),
                    "--name",
                    name,
                ],
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
                cwd=str(rundir),
            )
            log.close()  # the child holds its own descriptor
            self.processes[name] = proc
            tracer.emit("spawn", proc_name=name, pid=proc.pid)

    def _poll_children(self) -> Optional[str]:
        """Name of the first child that exited with a nonzero status."""
        dead: Optional[str] = None
        for name, proc in self.processes.items():
            rc = proc.poll()
            if rc is not None and rc != 0:
                if name not in self._deaths_notified:
                    self._deaths_notified.add(name)
                    for hook in self._death_hooks:
                        try:
                            hook(name, rc)
                        except Exception:  # noqa: BLE001 - hooks can't kill polling
                            pass
                if dead is None:
                    dead = name
        return dead

    def _collect(
        self,
        collector: Listener,
        channels: Dict[int, Channel],
        layout: TileLayout,
        n_pics: int,
        n_tiles: int,
        timeout: float,
        tracer: TraceWriter,
        pools: Optional[PoolRegistry] = None,
    ) -> List[Frame]:
        cfg = self.config
        deadline = time.monotonic() + timeout

        def check(what: str) -> None:
            dead = self._poll_children()
            if dead is not None:
                raise ClusterError(
                    f"worker {dead!r} exited with status "
                    f"{self.processes[dead].returncode} while {what}",
                    self._diagnostics(),
                )
            if time.monotonic() >= deadline:
                raise ClusterError(
                    f"cluster timed out after {timeout:.0f}s while {what}",
                    self._diagnostics(),
                )

        # Accept one channel per tile decoder, polling liveness throughout.
        while len(channels) < n_tiles:
            check("waiting for decoders to connect")
            try:
                peer, ch = accept_labeled(collector, "supervisor", cfg, 0.25)
            except ChannelTimeout:
                continue
            if not peer.startswith("dec"):
                raise ClusterError(f"unexpected connection from {peer!r}")
            channels[int(peer[3:])] = ch
            tracer.emit("accept", peer=peer)

        frame_q: "queue.Queue" = queue.Queue()
        for tid, ch in channels.items():
            _pump(ch, frame_q, f"dec{tid}")

        buckets: Dict[int, Dict[int, tuple]] = {}
        frames: Dict[int, Frame] = {}
        collected = 0
        eos_from: set = set()
        while collected < n_pics * n_tiles:
            check("collecting frames")
            try:
                kind, label, msg = frame_q.get(timeout=0.25)
            except queue.Empty:
                continue
            if kind == "closed":
                if label in eos_from:
                    continue
                raise ClusterError(
                    f"{label} disconnected mid-stream", self._diagnostics()
                )
            if kind == "error":
                raise ClusterError(f"{label}: {msg}", self._diagnostics())
            if msg.type == MSG_ERROR:
                proc_name, err = decode_error(msg.payload)
                raise ClusterError(
                    f"worker {proc_name!r} reported: {err}", self._diagnostics()
                )
            if msg.type == MSG_EOS:
                eos_from.add(label)
                continue
            if msg.type == MSG_FRAME_H:
                if pools is None:
                    raise ClusterError(
                        f"{label} sent a frame handle but the pool is off"
                    )
                tid, rect, y, cb, cr, handle, stamps = decode_tile_frame_hmsg(
                    msg.payload, pools.view
                )
            elif msg.type == MSG_FRAME:
                tid, rect, y, cb, cr, stamps = decode_tile_frame(msg.payload)
                handle = None
            else:
                raise ClusterError(f"unexpected message {msg.type} from {label}")
            buckets.setdefault(msg.picture, {})[tid] = (
                rect, y, cb, cr, handle, stamps,
            )
            collected += 1
            if len(buckets[msg.picture]) == n_tiles:
                crops = buckets.pop(msg.picture)
                frames[msg.picture] = self._assemble(layout, crops)
                # The paste copied every slab view out; give the slabs back.
                for _rect, _y, _cb, _cr, h, _st in crops.values():
                    if h is not None:
                        pools.release(h)
                tracer.emit("frame_assembled", picture=msg.picture)
                if cfg.telemetry:
                    self._emit_e2e(tracer, msg.picture, crops)
        return [frames[i] for i in sorted(frames)]

    @staticmethod
    def _emit_e2e(tracer: TraceWriter, picture: int, crops: Dict[int, tuple]) -> None:
        """End-to-end picture latency with per-hop attribution.

        The stamps (wall clock, one shared base per host) travel with the
        picture: ``t_root`` at pipeline ingress, ``t_split`` when the
        splitter ships the plans, ``t_dec`` when each decoder ships its
        tile.  The paste completes the path here.  The three hops are
        telescoping by construction — split + decode + collect is exactly
        the end-to-end figure — so the trace-report attribution and the
        e2e histogram cannot drift apart."""
        t_paste = time.time()
        stamps = [st for *_rest, st in crops.values() if st[0] > 0.0]
        if not stamps:
            return  # legacy peer or flushed tail without an ingress stamp
        t_root = stamps[0][0]
        t_split = max(st[1] for st in stamps)
        t_dec = max(st[2] for st in stamps)
        e2e = t_paste - t_root
        hops = {
            "split": t_split - t_root,
            "decode": t_dec - t_split,
            "collect": t_paste - t_dec,
        }
        critical = max(hops, key=hops.get)
        tracer.emit(
            "e2e",
            picture=picture,
            e2e_s=round(e2e, 6),
            critical=critical,
            **{f"{k}_s": round(v, 6) for k, v in hops.items()},
        )
        reg = registry()
        reg.histogram("e2e.latency").observe(max(0.0, e2e))
        reg.counter(f"e2e.critical.{critical}").inc()

    @staticmethod
    def _assemble(layout: TileLayout, crops: Dict[int, tuple]) -> Frame:
        """Paste each tile's partition crop — the multi-process equivalent
        of :func:`repro.wall.display.assemble_wall`."""
        out = Frame.blank(layout.width, layout.height)
        for _tid, (p, y, cb, cr, _h, _st) in crops.items():
            out.y[p.y0 : p.y1, p.x0 : p.x1] = y
            out.cb[p.y0 // 2 : p.y1 // 2, p.x0 // 2 : p.x1 // 2] = cb
            out.cr[p.y0 // 2 : p.y1 // 2, p.x0 // 2 : p.x1 // 2] = cr
        return out

    # ------------------------------------------------------------------ #

    def _shutdown(self, timeout: float, tracer: TraceWriter) -> None:
        """Graceful drain: all frames are in, so children exit on their own
        EOS cascade; escalate only past the deadline."""
        cfg = self.config
        deadline = time.monotonic() + min(timeout, cfg.shutdown_drain_s)
        for name, proc in self.processes.items():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                rc = proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    rc = proc.wait(timeout=cfg.terminate_grace_s)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    rc = proc.wait()
            tracer.emit("child_exit", proc_name=name, returncode=rc)
        self._harvest_stage_times()
        tracer.emit("shutdown")

    def _teardown(self, tracer: TraceWriter) -> None:
        """Failure path: kill every child so nothing outlives the error."""
        for name, proc in self.processes.items():
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + self.config.teardown_kill_s
        for name, proc in self.processes.items():
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
            tracer.emit("child_killed", proc_name=name, returncode=proc.returncode)
        tracer.emit("teardown")

    def shutdown(self, reason: str = "requested") -> None:
        """Stop *this* run's process tree cleanly, recording why.

        The per-session stop the wall service needs: a service running one
        supervisor per session can end a single session without touching
        the rest of the pool — only this supervisor's children are
        signalled (terminate, escalating to kill past
        ``config.teardown_kill_s``).  Idempotent and safe to call from
        another thread; a concurrent :meth:`decode` surfaces the stop as a
        :class:`ClusterError` on its own thread.  ``reason`` lands in the
        supervisor trace so the post-mortem distinguishes a requested stop
        from a crash teardown.
        """
        if self._stopped:
            return
        self._stopped = True
        tracer = self._tracer
        if tracer is not None:
            tracer.emit("shutdown_requested", reason=reason)
        for proc in self.processes.values():
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + self.config.teardown_kill_s
        for name, proc in self.processes.items():
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
            if tracer is not None:
                tracer.emit(
                    "child_stopped", proc_name=name, returncode=proc.returncode
                )
        if tracer is not None:
            tracer.emit("shutdown_complete", reason=reason)

    def _harvest_stage_times(self) -> None:
        """Collect per-process stage timers out of the trace streams.

        ``stage_times_by_proc`` keeps every emitting process (splitters and
        decoders); ``stage_times`` stays the decoder-only aggregate for
        backward compatibility.
        """
        assert self.rundir is not None
        self.stage_times_by_proc = load_stage_times(self.rundir)
        for proc, st in self.stage_times_by_proc.items():
            if proc.startswith("dec"):
                self.stage_times.merge(st)

    def _diagnostics(self) -> str:
        """Per-process post-mortem: exit codes, log tails, and the last few
        trace events — a SIGKILLed worker's open span begins say *where*
        in the pipeline it died."""
        lines = []
        for name, proc in self.processes.items():
            rc = proc.poll()
            state = "running" if rc is None else f"exit {rc}"
            lines.append(f"--- {name} ({state}) ---")
            log = (self.rundir / f"{name}.log") if self.rundir else None
            if log and log.exists():
                tail = log.read_text(errors="replace").splitlines()[-12:]
                lines.extend(f"    {ln}" for ln in tail)
            trace = (self.rundir / f"{name}{TRACE_SUFFIX}") if self.rundir else None
            if trace and trace.exists():
                try:
                    events = read_trace_file(trace, strict=False)
                except OSError:
                    events = []
                if events:
                    lines.append(f"    last {POSTMORTEM_EVENTS} trace events:")
                    lines.extend(
                        f"      {ln}" for ln in span_tail(events, POSTMORTEM_EVENTS)
                    )
        return "\n".join(lines)
