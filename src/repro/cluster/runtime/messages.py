"""Application message types and payload codecs for the cluster runtime.

The channel layer (:mod:`repro.net.channel`) frames every message with a
type + picture-index header; this module defines the types and how each
payload is encoded.  The two high-volume payloads — reference-pixel
blocks and decoded tile frames — use hand-rolled struct + raw-plane
encodings so the runtime moves pixels, not pickles.  Low-volume control
payloads (picture units, sequence headers, MEI programs) use pickle:
every peer is a worker this package spawned itself, so the usual pickle
trust caveat does not bite.
"""

from __future__ import annotations

import json
import pickle
import struct
from typing import Tuple

import numpy as np

from repro.mpeg2 import plan_codec
from repro.mpeg2.frames import Frame
from repro.mpeg2.motion import Rect
from repro.mpeg2.parser import PictureUnit
from repro.mpeg2.plan_codec import Buffers, TilePlan
from repro.mpeg2.reconstruct import QuantMatrices
from repro.mpeg2.structures import SequenceHeader
from repro.parallel.mei import BlockXfer, MEIProgram
from repro.parallel.pdecoder import PixelBlock

# ---------------------------- message types ----------------------------- #
# (repro.net.channel.HEARTBEAT is 0; application types start at 1.)

MSG_HELLO = 1  # dialer -> accepter: who is calling           (json)
MSG_SEQ = 2  # root -> splitters -> decoders: SequenceHeader  (pickle)
MSG_PICTURE = 3  # root -> splitter: one coded picture        (pickle)
MSG_SUBPICTURE = 4  # splitter -> decoder: SP + MEI program   (struct+pickle)
MSG_ACK = 5  # decoder -> ANID splitter: picture received     (empty)
MSG_BLOCK = 6  # decoder -> decoder: reference pixels         (struct+planes)
MSG_FRAME = 7  # decoder -> collector: displayed tile crop    (struct+planes)
MSG_CREDIT = 8  # splitter -> root: receive buffer freed      (empty)
MSG_EOS = 9  # end of stream, cascaded down the tree          (empty)
MSG_ERROR = 10  # any worker -> collector: fatal diagnostic   (json)
MSG_PLAN = 11  # splitter -> decoder: compiled plan + MEI     (struct+arrays+pickle)


# ------------------------------ hello ----------------------------------- #


def encode_hello(name: str) -> bytes:
    return json.dumps({"name": name}).encode()


def decode_hello(payload: bytes) -> str:
    return json.loads(payload.decode())["name"]


# --------------------------- control payloads --------------------------- #


def encode_sequence(seq: SequenceHeader) -> bytes:
    return pickle.dumps(seq, protocol=pickle.HIGHEST_PROTOCOL)


def decode_sequence(payload: bytes) -> SequenceHeader:
    return pickle.loads(payload)


def encode_picture(nsid: int, unit: PictureUnit) -> bytes:
    return pickle.dumps((nsid, unit), protocol=pickle.HIGHEST_PROTOCOL)


def decode_picture(payload: bytes) -> Tuple[int, PictureUnit]:
    return pickle.loads(payload)


_SP_HEAD = "<HHI"  # anid, expected_recvs, len(sp_bytes)


def encode_subpicture(anid: int, sp_bytes: bytes, program: MEIProgram) -> bytes:
    head = struct.pack(_SP_HEAD, anid, len(program.recvs), len(sp_bytes))
    return head + sp_bytes + pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)


def decode_subpicture(payload: bytes) -> Tuple[int, int, bytes, MEIProgram]:
    """Return ``(anid, expected_recvs, sp_bytes, program)``."""
    anid, expected, sp_len = struct.unpack_from(_SP_HEAD, payload)
    off = struct.calcsize(_SP_HEAD)
    sp_bytes = payload[off : off + sp_len]
    program = pickle.loads(payload[off + sp_len :])
    return anid, expected, sp_bytes, program


_PLAN_HEAD = "<HHI"  # anid, expected_recvs, plan byte count


def encode_plan_msg(anid: int, tp: TilePlan, program: MEIProgram) -> Buffers:
    """Encode a compiled tile plan + its MEI program as a buffer list.

    The plan's ndarray buffers pass through untouched (zero-copy on the
    socket); only the small MEI program is pickled.
    """
    plan_bufs = plan_codec.encode_plan(tp)
    head = struct.pack(
        _PLAN_HEAD, anid, len(program.recvs), plan_codec.buffers_nbytes(plan_bufs)
    )
    return [head, *plan_bufs, pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)]


def decode_plan_msg(
    payload: bytes, matrices: QuantMatrices
) -> Tuple[int, int, TilePlan, MEIProgram]:
    """Return ``(anid, expected_recvs, tile_plan, program)``.

    The plan's arrays are zero-copy views into ``payload``; ``matrices``
    is the decoder's own copy (matrices never travel on the wire — see
    :mod:`repro.mpeg2.plan_codec`).
    """
    anid, expected, plan_len = struct.unpack_from(_PLAN_HEAD, payload)
    off = struct.calcsize(_PLAN_HEAD)
    tp, end = plan_codec.decode_plan(payload, matrices, offset=off)
    if end - off != plan_len:
        raise ValueError(
            f"plan payload length mismatch: header says {plan_len}, "
            f"codec consumed {end - off}"
        )
    program = pickle.loads(payload[end:])
    return anid, expected, tp, program


def encode_error(proc: str, error: str) -> bytes:
    return json.dumps({"proc": proc, "error": error}).encode()


def decode_error(payload: bytes) -> Tuple[str, str]:
    rec = json.loads(payload.decode())
    return rec["proc"], rec["error"]


# ------------------------- pixel-block payload -------------------------- #

_BLOCK_FMT = "<HHB8HB"  # src, dest, direction, luma rect, chroma rect, flags


def _rect_shape(r: Rect) -> Tuple[int, int]:
    return (r.y1 - r.y0, r.x1 - r.x0)


def encode_block(block: PixelBlock) -> bytes:
    lr, cr_ = block.xfer.luma, block.xfer.chroma
    flags = (
        (1 if block.y is not None else 0)
        | (2 if block.cb is not None else 0)
        | (4 if block.cr is not None else 0)
    )
    head = struct.pack(
        _BLOCK_FMT,
        block.src,
        block.dest,
        block.xfer.direction,
        lr.x0, lr.y0, lr.x1, lr.y1,
        cr_.x0, cr_.y0, cr_.x1, cr_.y1,
        flags,
    )
    planes = [
        np.ascontiguousarray(p).tobytes()
        for p in (block.y, block.cb, block.cr)
        if p is not None
    ]
    return head + b"".join(planes)


def decode_block(payload: bytes) -> PixelBlock:
    vals = struct.unpack_from(_BLOCK_FMT, payload)
    src, dest, direction = vals[0], vals[1], vals[2]
    luma = Rect(vals[3], vals[4], vals[5], vals[6])
    chroma = Rect(vals[7], vals[8], vals[9], vals[10])
    flags = vals[11]
    off = struct.calcsize(_BLOCK_FMT)

    def take(rect: Rect, present: bool):
        nonlocal off
        if not present:
            return None
        h, w = _rect_shape(rect)
        plane = np.frombuffer(payload, dtype=np.uint8, count=h * w, offset=off)
        off += h * w
        return plane.reshape(h, w)

    y = take(luma, bool(flags & 1))
    cb = take(chroma, bool(flags & 2))
    cr = take(chroma, bool(flags & 4))
    return PixelBlock(
        xfer=BlockXfer(luma=luma, chroma=chroma, direction=direction),
        src=src,
        dest=dest,
        y=y,
        cb=cb,
        cr=cr,
    )


# ------------------------- tile-frame payload --------------------------- #
#
# A decoder's frame is only authoritative on its partition rectangle, so
# only that crop travels to the collector — a 2x2 wall ships one full
# frame's worth of pixels per picture instead of four.

_FRAME_FMT = "<H4H"  # tile id, partition rect


def encode_tile_frame(tid: int, partition: Rect, frame: Frame) -> Buffers:
    """Encode a tile crop as a buffer list (planes go zero-copy to the wire)."""
    p = partition
    head = struct.pack(_FRAME_FMT, tid, p.x0, p.y0, p.x1, p.y1)
    y = np.ascontiguousarray(frame.y[p.y0 : p.y1, p.x0 : p.x1])
    cb = np.ascontiguousarray(frame.cb[p.y0 // 2 : p.y1 // 2, p.x0 // 2 : p.x1 // 2])
    cr = np.ascontiguousarray(frame.cr[p.y0 // 2 : p.y1 // 2, p.x0 // 2 : p.x1 // 2])
    return [head, memoryview(y), memoryview(cb), memoryview(cr)]


def decode_tile_frame(payload: bytes) -> Tuple[int, Rect, np.ndarray, np.ndarray, np.ndarray]:
    tid, x0, y0, x1, y1 = struct.unpack_from(_FRAME_FMT, payload)
    rect = Rect(x0, y0, x1, y1)
    off = struct.calcsize(_FRAME_FMT)
    h, w = y1 - y0, x1 - x0
    ch, cw = h // 2, w // 2

    def take(n, shape):
        nonlocal off
        plane = np.frombuffer(payload, dtype=np.uint8, count=n, offset=off)
        off += n
        return plane.reshape(shape)

    y = take(h * w, (h, w))
    cb = take(ch * cw, (ch, cw))
    cr = take(ch * cw, (ch, cw))
    return tid, rect, y, cb, cr
