"""Application message types and payload codecs for the cluster runtime.

The channel layer (:mod:`repro.net.channel`) frames every message with a
type + picture-index header; this module defines the types and how each
payload is encoded.  The two high-volume payloads — reference-pixel
blocks and decoded tile frames — use hand-rolled struct + raw-plane
encodings so the runtime moves pixels, not pickles.  Low-volume control
payloads (picture units, sequence headers, MEI programs) use pickle:
every peer is a worker this package spawned itself, so the usual pickle
trust caveat does not bite.
"""

from __future__ import annotations

import json
import pickle
import struct
from typing import Optional, Tuple

import numpy as np

from repro.mem import Handle
from repro.mpeg2 import plan_codec
from repro.mpeg2.frames import Frame
from repro.mpeg2.motion import Rect
from repro.mpeg2.parser import PictureUnit
from repro.mpeg2.plan_codec import Buffers, TilePlan
from repro.mpeg2.reconstruct import QuantMatrices
from repro.mpeg2.structures import SequenceHeader
from repro.parallel.mei import BlockXfer, MEIProgram
from repro.parallel.pdecoder import PixelBlock

# ---------------------------- message types ----------------------------- #
# (repro.net.channel.HEARTBEAT is 0; application types start at 1.)

MSG_HELLO = 1  # dialer -> accepter: who is calling           (json)
MSG_SEQ = 2  # root -> splitters -> decoders: SequenceHeader  (pickle)
MSG_PICTURE = 3  # root -> splitter: one coded picture        (pickle)
MSG_SUBPICTURE = 4  # splitter -> decoder: SP + MEI program   (struct+pickle)
MSG_ACK = 5  # decoder -> ANID splitter: picture received     (empty)
MSG_BLOCK = 6  # decoder -> decoder: reference pixels         (struct+planes)
MSG_FRAME = 7  # decoder -> collector: displayed tile crop    (struct+planes)
MSG_CREDIT = 8  # splitter -> root: receive buffer freed      (empty)
MSG_EOS = 9  # end of stream, cascaded down the tree          (empty)
MSG_ERROR = 10  # any worker -> collector: fatal diagnostic   (json)
MSG_PLAN = 11  # splitter -> decoder: compiled plan + MEI     (struct+arrays+pickle)

# Handle-bearing twins of the three high-volume payloads.  Same metadata
# headers as the by-value forms, but the pixels/arrays live in a
# shared-memory pool slab (repro.mem) and only a ~30-byte Handle crosses
# the socket.  Negotiated per channel at HELLO time; TCP peers and
# pool-exhausted sends fall back to the by-value types above.
MSG_PLAN_H = 12  # splitter -> decoder: plan handle + MEI     (struct+handle+pickle)
MSG_BLOCK_H = 13  # decoder -> decoder: reference pixel handle (struct+handle)
MSG_FRAME_H = 14  # decoder -> collector: tile crop handle    (struct+handle)

# Adaptive tile repartitioning (repro.parallel.partition): the root
# broadcasts versioned partition changes down the tree, and telemetry
# reports (per-tile busy time, per-picture content profiles) ride the
# existing back-channels upstream.
MSG_LAYOUT = 15  # root -> splitters -> decoders: LayoutUpdate (struct)
MSG_REPORT = 16  # decoder/splitter -> root: partition telemetry (json)


# ------------------------------ hello ----------------------------------- #
#
# HELLO is exchanged symmetrically: the dialer announces itself, the
# accepter replies with its own HELLO.  Both carry a ``features`` dict so
# either end can tell whether its peer accepts shared-memory handles
# (``{"shm_pool": true}``); an empty/absent dict means by-value only,
# which keeps old and new peers interoperable.


def encode_hello(name: str, features: Optional[dict] = None) -> bytes:
    rec = {"name": name}
    if features:
        rec["features"] = features
    return json.dumps(rec).encode()


def decode_hello(payload: bytes) -> str:
    return json.loads(payload.decode())["name"]


def decode_hello_full(payload: bytes) -> Tuple[str, dict]:
    rec = json.loads(payload.decode())
    return rec["name"], rec.get("features", {})


# --------------------------- control payloads --------------------------- #


def encode_sequence(seq: SequenceHeader) -> bytes:
    return pickle.dumps(seq, protocol=pickle.HIGHEST_PROTOCOL)


def decode_sequence(payload: bytes) -> SequenceHeader:
    return pickle.loads(payload)


def encode_picture(nsid: int, unit: PictureUnit, t_ingress: float = 0.0) -> bytes:
    """``t_ingress`` is the root's wall-clock stamp (``time.time()``) taken
    when the picture entered the pipeline — the origin of the end-to-end
    latency measurement.  ``time.time()`` is the one clock every process
    on the same host shares; stamps always travel (they never influence
    pixels), so the telemetry kill-switch stays bit-identical."""
    return pickle.dumps((nsid, unit, t_ingress), protocol=pickle.HIGHEST_PROTOCOL)


def decode_picture(payload: bytes) -> Tuple[int, PictureUnit, float]:
    rec = pickle.loads(payload)
    if len(rec) == 2:  # legacy 2-tuple: no ingress stamp
        return rec[0], rec[1], 0.0
    return rec


#: Two latency stamps ride every downstream header: ``t_root`` (pipeline
#: ingress at the root) and ``t_split`` (plan/subpicture shipped by the
#: splitter).  Decoder->collector frames add ``t_dec`` (tile shipped).
_SP_HEAD = "<HHIdd"  # anid, expected_recvs, len(sp_bytes), t_root, t_split


def encode_subpicture(
    anid: int,
    sp_bytes: bytes,
    program: MEIProgram,
    stamps: Tuple[float, float] = (0.0, 0.0),
) -> bytes:
    head = struct.pack(
        _SP_HEAD, anid, len(program.recvs), len(sp_bytes), *stamps
    )
    return head + sp_bytes + pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)


def decode_subpicture(
    payload: bytes,
) -> Tuple[int, int, bytes, MEIProgram, Tuple[float, float]]:
    """Return ``(anid, expected_recvs, sp_bytes, program, (t_root, t_split))``."""
    anid, expected, sp_len, t_root, t_split = struct.unpack_from(_SP_HEAD, payload)
    off = struct.calcsize(_SP_HEAD)
    sp_bytes = payload[off : off + sp_len]
    program = pickle.loads(payload[off + sp_len :])
    return anid, expected, sp_bytes, program, (t_root, t_split)


_PLAN_HEAD = "<HHIdd"  # anid, expected_recvs, plan byte count, t_root, t_split


def encode_plan_msg(
    anid: int,
    tp: TilePlan,
    program: MEIProgram,
    stamps: Tuple[float, float] = (0.0, 0.0),
) -> Buffers:
    """Encode a compiled tile plan + its MEI program as a buffer list.

    The plan's ndarray buffers pass through untouched (zero-copy on the
    socket); only the small MEI program is pickled.
    """
    plan_bufs = plan_codec.encode_plan(tp)
    head = struct.pack(
        _PLAN_HEAD,
        anid,
        len(program.recvs),
        plan_codec.buffers_nbytes(plan_bufs),
        *stamps,
    )
    return [head, *plan_bufs, pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)]


def decode_plan_msg(
    payload: bytes, matrices: QuantMatrices
) -> Tuple[int, int, TilePlan, MEIProgram, Tuple[float, float]]:
    """Return ``(anid, expected_recvs, tile_plan, program, (t_root, t_split))``.

    The plan's arrays are zero-copy views into ``payload``; ``matrices``
    is the decoder's own copy (matrices never travel on the wire — see
    :mod:`repro.mpeg2.plan_codec`).
    """
    anid, expected, plan_len, t_root, t_split = struct.unpack_from(
        _PLAN_HEAD, payload
    )
    off = struct.calcsize(_PLAN_HEAD)
    tp, end = plan_codec.decode_plan(payload, matrices, offset=off)
    if end - off != plan_len:
        raise ValueError(
            f"plan payload length mismatch: header says {plan_len}, "
            f"codec consumed {end - off}"
        )
    program = pickle.loads(payload[end:])
    return anid, expected, tp, program, (t_root, t_split)


_PLAN_H_HEAD = "<HHdd"  # anid, expected_recvs, t_root, t_split


def encode_plan_hmsg(
    anid: int,
    handle: Handle,
    program: MEIProgram,
    stamps: Tuple[float, float] = (0.0, 0.0),
) -> bytes:
    """MSG_PLAN_H payload: the plan already sits in a pool slab (written
    there with :func:`~repro.mpeg2.plan_codec.encode_plan_into`); only
    anid + handle + the small pickled MEI program cross the wire."""
    head = struct.pack(_PLAN_H_HEAD, anid, len(program.recvs), *stamps)
    return (
        head
        + handle.pack()
        + pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
    )


def decode_plan_hmsg(
    payload: bytes,
) -> Tuple[int, int, Handle, MEIProgram, Tuple[float, float]]:
    """Return ``(anid, expected_recvs, handle, program, (t_root, t_split))``.

    The caller views the handle through its :class:`~repro.mem.PoolRegistry`
    and decodes the slab with the ordinary ``decode_plan`` — the slab
    layout is byte-identical to the by-value wire payload.
    """
    anid, expected, t_root, t_split = struct.unpack_from(_PLAN_H_HEAD, payload)
    handle, off = Handle.unpack(payload, struct.calcsize(_PLAN_H_HEAD))
    program = pickle.loads(payload[off:])
    return anid, expected, handle, program, (t_root, t_split)


# ----------------------- partition telemetry ---------------------------- #
#
# MSG_LAYOUT carries a LayoutUpdate in its own struct codec (see
# repro.parallel.partition); MSG_REPORT is low-volume JSON — one small
# record per picture per reporter, riding the ack/credit back-channels.


def encode_report(rec: dict) -> bytes:
    return json.dumps(rec).encode()


def decode_report(payload: bytes) -> dict:
    return json.loads(payload.decode())


def encode_error(proc: str, error: str) -> bytes:
    return json.dumps({"proc": proc, "error": error}).encode()


def decode_error(payload: bytes) -> Tuple[str, str]:
    rec = json.loads(payload.decode())
    return rec["proc"], rec["error"]


# ------------------------- pixel-block payload -------------------------- #

_BLOCK_FMT = "<HHB8HB"  # src, dest, direction, luma rect, chroma rect, flags


def _rect_shape(r: Rect) -> Tuple[int, int]:
    return (r.y1 - r.y0, r.x1 - r.x0)


def encode_block(block: PixelBlock) -> bytes:
    lr, cr_ = block.xfer.luma, block.xfer.chroma
    flags = (
        (1 if block.y is not None else 0)
        | (2 if block.cb is not None else 0)
        | (4 if block.cr is not None else 0)
    )
    head = struct.pack(
        _BLOCK_FMT,
        block.src,
        block.dest,
        block.xfer.direction,
        lr.x0, lr.y0, lr.x1, lr.y1,
        cr_.x0, cr_.y0, cr_.x1, cr_.y1,
        flags,
    )
    planes = [
        np.ascontiguousarray(p).tobytes()
        for p in (block.y, block.cb, block.cr)
        if p is not None
    ]
    return head + b"".join(planes)


def _block_from(vals, planes_buf, planes_off: int) -> PixelBlock:
    """Build a PixelBlock from unpacked header values + a plane buffer
    (the socket payload tail, or a shared-memory slab view)."""
    src, dest, direction = vals[0], vals[1], vals[2]
    luma = Rect(vals[3], vals[4], vals[5], vals[6])
    chroma = Rect(vals[7], vals[8], vals[9], vals[10])
    flags = vals[11]
    off = planes_off

    def take(rect: Rect, present: bool):
        nonlocal off
        if not present:
            return None
        h, w = _rect_shape(rect)
        plane = np.frombuffer(
            planes_buf, dtype=np.uint8, count=h * w, offset=off
        )
        off += h * w
        return plane.reshape(h, w)

    y = take(luma, bool(flags & 1))
    cb = take(chroma, bool(flags & 2))
    cr = take(chroma, bool(flags & 4))
    return PixelBlock(
        xfer=BlockXfer(luma=luma, chroma=chroma, direction=direction),
        src=src,
        dest=dest,
        y=y,
        cb=cb,
        cr=cr,
    )


def decode_block(payload: bytes) -> PixelBlock:
    vals = struct.unpack_from(_BLOCK_FMT, payload)
    return _block_from(vals, payload, struct.calcsize(_BLOCK_FMT))


def block_nbytes(block: PixelBlock) -> int:
    """Plane payload bytes of one block (slab lease sizing)."""
    return sum(p.nbytes for p in (block.y, block.cb, block.cr) if p is not None)


def write_block_into(block: PixelBlock, buf) -> int:
    """Write the block's planes into a pool slab; returns bytes written."""
    off = 0
    for p in (block.y, block.cb, block.cr):
        if p is None:
            continue
        dst = np.frombuffer(buf, dtype=np.uint8, count=p.nbytes, offset=off)
        np.copyto(dst.reshape(p.shape), p)
        off += p.nbytes
    return off


def encode_block_hmsg(block: PixelBlock, handle: Handle) -> bytes:
    """MSG_BLOCK_H payload: the by-value header + the slab handle; the
    planes were already written with :func:`write_block_into`."""
    lr, cr_ = block.xfer.luma, block.xfer.chroma
    flags = (
        (1 if block.y is not None else 0)
        | (2 if block.cb is not None else 0)
        | (4 if block.cr is not None else 0)
    )
    head = struct.pack(
        _BLOCK_FMT,
        block.src,
        block.dest,
        block.xfer.direction,
        lr.x0, lr.y0, lr.x1, lr.y1,
        cr_.x0, cr_.y0, cr_.x1, cr_.y1,
        flags,
    )
    return head + handle.pack()


def decode_block_hmsg(payload: bytes, view_fn) -> Tuple[PixelBlock, Handle]:
    """Decode a handle-bearing block; ``view_fn`` maps Handle -> memoryview
    (a :meth:`~repro.mem.PoolRegistry.view` bound method).  The returned
    planes are zero-copy views into the slab — release the handle only
    after they have been applied."""
    vals = struct.unpack_from(_BLOCK_FMT, payload)
    handle, _off = Handle.unpack(payload, struct.calcsize(_BLOCK_FMT))
    return _block_from(vals, view_fn(handle), 0), handle


# ------------------------- tile-frame payload --------------------------- #
#
# A decoder's frame is only authoritative on its partition rectangle, so
# only that crop travels to the collector — a 2x2 wall ships one full
# frame's worth of pixels per picture instead of four.

_FRAME_FMT = "<H4Hddd"  # tile id, partition rect, t_root, t_split, t_dec


def encode_tile_frame(
    tid: int,
    partition: Rect,
    frame: Frame,
    stamps: Tuple[float, float, float] = (0.0, 0.0, 0.0),
) -> Buffers:
    """Encode a tile crop as a buffer list (planes go zero-copy to the wire)."""
    p = partition
    head = struct.pack(_FRAME_FMT, tid, p.x0, p.y0, p.x1, p.y1, *stamps)
    y = np.ascontiguousarray(frame.y[p.y0 : p.y1, p.x0 : p.x1])
    cb = np.ascontiguousarray(frame.cb[p.y0 // 2 : p.y1 // 2, p.x0 // 2 : p.x1 // 2])
    cr = np.ascontiguousarray(frame.cr[p.y0 // 2 : p.y1 // 2, p.x0 // 2 : p.x1 // 2])
    return [head, memoryview(y), memoryview(cb), memoryview(cr)]


def decode_tile_frame(
    payload: bytes,
) -> Tuple[int, Rect, np.ndarray, np.ndarray, np.ndarray, Tuple[float, float, float]]:
    vals = struct.unpack_from(_FRAME_FMT, payload)
    tid, x0, y0, x1, y1 = vals[:5]
    stamps = vals[5:8]
    rect = Rect(x0, y0, x1, y1)
    off = struct.calcsize(_FRAME_FMT)
    h, w = y1 - y0, x1 - x0
    ch, cw = h // 2, w // 2

    def take(n, shape):
        nonlocal off
        plane = np.frombuffer(payload, dtype=np.uint8, count=n, offset=off)
        off += n
        return plane.reshape(shape)

    y = take(h * w, (h, w))
    cb = take(ch * cw, (ch, cw))
    cr = take(ch * cw, (ch, cw))
    return tid, rect, y, cb, cr, stamps


def tile_frame_nbytes(partition: Rect) -> int:
    """Crop payload bytes for one tile frame (slab lease sizing)."""
    h, w = partition.y1 - partition.y0, partition.x1 - partition.x0
    return h * w + 2 * (h // 2) * (w // 2)


def write_tile_frame_into(frame: Frame, partition: Rect, buf) -> int:
    """Copy the tile's authoritative crop straight into a pool slab.

    One strided copy per plane, from the decoder's frame into shared
    memory — the collector pastes from the slab with no socket transfer.
    """
    p = partition
    h, w = p.y1 - p.y0, p.x1 - p.x0
    ch, cw = h // 2, w // 2
    off = 0
    for src, (ph, pw) in (
        (frame.y[p.y0 : p.y1, p.x0 : p.x1], (h, w)),
        (frame.cb[p.y0 // 2 : p.y1 // 2, p.x0 // 2 : p.x1 // 2], (ch, cw)),
        (frame.cr[p.y0 // 2 : p.y1 // 2, p.x0 // 2 : p.x1 // 2], (ch, cw)),
    ):
        dst = np.frombuffer(buf, dtype=np.uint8, count=ph * pw, offset=off)
        np.copyto(dst.reshape(ph, pw), src)
        off += ph * pw
    return off


def encode_tile_frame_hmsg(
    tid: int,
    partition: Rect,
    handle: Handle,
    stamps: Tuple[float, float, float] = (0.0, 0.0, 0.0),
) -> bytes:
    p = partition
    head = struct.pack(_FRAME_FMT, tid, p.x0, p.y0, p.x1, p.y1, *stamps)
    return head + handle.pack()


def decode_tile_frame_hmsg(
    payload: bytes, view_fn
) -> Tuple[
    int, Rect, np.ndarray, np.ndarray, np.ndarray, Handle,
    Tuple[float, float, float],
]:
    """Handle-bearing tile crop; plane arrays are zero-copy slab views, so
    release the handle only after they have been pasted."""
    vals = struct.unpack_from(_FRAME_FMT, payload)
    tid, x0, y0, x1, y1 = vals[:5]
    stamps = vals[5:8]
    rect = Rect(x0, y0, x1, y1)
    handle, _off = Handle.unpack(payload, struct.calcsize(_FRAME_FMT))
    view = view_fn(handle)
    h, w = y1 - y0, x1 - x0
    ch, cw = h // 2, w // 2
    off = 0

    def take(n, shape):
        nonlocal off
        plane = np.frombuffer(view, dtype=np.uint8, count=n, offset=off)
        off += n
        return plane.reshape(shape)

    y = take(h * w, (h, w))
    cb = take(ch * cw, (ch, cw))
    cr = take(ch * cw, (ch, cw))
    return tid, rect, y, cb, cr, handle, stamps
