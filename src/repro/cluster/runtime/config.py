"""Cluster runtime configuration: the shape of one 1-k-(m,n) deployment.

A :class:`WallConfig` is everything a worker process needs to take its
place in the process tree — wall geometry, splitter count, transport
choice, and the timeout/flow-control knobs.  It is JSON-round-trippable
because the supervisor ships it to workers through the run directory.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass
from typing import Optional, Tuple


@dataclass
class WallConfig:
    """Static description of one cluster run.

    ``queue_depth`` is the paper's posted-receive-buffer count per
    splitter (two); the root holds that many send credits per splitter.
    ``ship_plans`` selects what splitters send decoders: compiled
    reconstruction plans (decoders never run VLC) or sub-picture
    bitstreams (the fallback path, which decoders re-parse).
    ``fail_at`` is a fault-injection hook for teardown tests: a spec like
    ``"dec1@2"`` makes that worker kill itself (SIGKILL) when it is about
    to handle picture 2.
    ``telemetry`` gates span emission and periodic stats snapshots in the
    per-process trace streams; the coarse event stream (start/exit/
    stage_times/decode) survives either way.  Off is the baseline for the
    instrumentation-overhead numbers in ``BENCH_cluster.json``.
    """

    m: int = 2
    n: int = 2
    k: int = 1
    overlap: int = 0
    transport: str = "unix"  # "unix" | "tcp"
    queue_depth: int = 2
    batch_reconstruct: bool = True
    ship_plans: bool = True
    connect_timeout: float = 15.0
    recv_timeout: float = 60.0
    heartbeat_interval: float = 0.25
    dead_after: float = 10.0
    # Dial retry/backoff (previously hard-wired inside the transport):
    # the interval of the first retry, the multiplier applied after each
    # failure, and the cap the interval saturates at.  Long-lived service
    # sessions raise the cap; tests shrink everything for fast failure.
    connect_retry_interval: float = 0.02
    connect_backoff: float = 1.6
    connect_max_interval: float = 0.5
    # Supervisor teardown/escalation budgets (previously hard-wired):
    # graceful drain wait, then SIGTERM grace, then SIGKILL on the failure
    # path (capped at ``teardown_kill_s`` total).
    shutdown_drain_s: float = 10.0
    terminate_grace_s: float = 2.0
    teardown_kill_s: float = 3.0
    fail_at: Optional[str] = None
    telemetry: bool = True
    # Shared-memory frame pool (repro.mem): when on, unix-socket peers
    # negotiate handle-bearing payloads at HELLO time and the high-volume
    # messages (plans, boundary blocks, tile crops) travel as ~30-byte
    # handles into pool slabs instead of copies.  TCP peers and exhausted
    # pools fall back to by-value automatically, so this flag never
    # affects output — only copies.  ``pool_token`` is minted by the
    # supervisor per run (workers inherit it through cluster.json) and
    # scopes both the segment names and the crash-safe purge.
    use_shm_pool: bool = True
    shm_dir: Optional[str] = None
    pool_token: str = ""
    # Pin each worker process to one core (round-robin over the
    # affinity mask) so the scheduler cannot stack decoders on one core.
    pin_cores: bool = False
    # Runtime tile-partition policy (repro.parallel.partition):
    # "static" keeps the paper's fixed grid; "content" re-places
    # partition lines from per-macroblock coded size (splitter-side load
    # proxy); "feedback" re-equalizes from decoder-reported per-picture
    # busy time.  Either adaptive policy repartitions only at closed-GOP
    # boundaries via versioned LAYOUT_UPDATE messages — output stays
    # bit-identical to the static layout.  ``partition_ewma`` is the
    # smoothing factor of the policy's load estimate.
    partition_policy: str = "static"
    partition_ewma: float = 0.5
    # Broadcast tee (repro.net.bcast): when set, the root also publishes
    # the coded stream on a one-to-many broadcast channel whose control
    # socket binds this unix path — wall receivers subscribe there and
    # decode their tiles independently of the unicast splitter path.
    # Encoded once regardless of subscriber count.
    bcast_addr: Optional[str] = None
    bcast_fps: float = 30.0

    def __post_init__(self) -> None:
        if self.m < 1 or self.n < 1:
            raise ValueError("wall needs at least one tile")
        if self.k < 1:
            raise ValueError("need at least one second-level splitter")
        if self.transport not in ("unix", "tcp"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.queue_depth < 1:
            raise ValueError("need at least one receive buffer per splitter")
        if min(self.shutdown_drain_s, self.terminate_grace_s, self.teardown_kill_s) <= 0:
            raise ValueError("teardown budgets must be positive")
        if self.partition_policy not in ("static", "content", "feedback"):
            raise ValueError(
                f"unknown partition policy {self.partition_policy!r}"
            )
        if not 0.0 < self.partition_ewma <= 1.0:
            raise ValueError("partition_ewma must be in (0, 1]")

    @property
    def connect_policy(self):
        """The transport's :class:`~repro.net.channel.ConnectPolicy`."""
        from repro.net.channel import ConnectPolicy

        return ConnectPolicy(
            retry_interval=self.connect_retry_interval,
            backoff=self.connect_backoff,
            max_interval=self.connect_max_interval,
        )

    @property
    def pool_enabled(self) -> bool:
        """Whether this run may negotiate shared-memory handles at all.

        A unix-socket transport proves every peer shares the host (and
        hence the shm namespace); TCP peers may be remote, so they always
        ship by value.
        """
        return self.use_shm_pool and self.transport == "unix"

    # ------------------------------------------------------------------ #

    @property
    def n_tiles(self) -> int:
        return self.m * self.n

    @property
    def process_names(self) -> list:
        """Every worker process, in spawn order."""
        return (
            ["root"]
            + [f"split{s}" for s in range(self.k)]
            + [f"dec{t}" for t in range(self.n_tiles)]
        )

    def parsed_fail_at(self) -> Optional[Tuple[str, int]]:
        """``("dec1", 2)`` for ``fail_at="dec1@2"``; None when unset."""
        if not self.fail_at:
            return None
        m = re.fullmatch(r"(root|split\d+|dec\d+)@(\d+)", self.fail_at)
        if not m:
            raise ValueError(f"bad fail_at spec {self.fail_at!r}")
        return m.group(1), int(m.group(2))

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "WallConfig":
        return cls(**data)
