"""Real multi-process cluster runtime for the 1-k-(m,n) pipeline.

The deterministic simulator (:mod:`repro.parallel.system`) and the
threaded runner (:mod:`repro.parallel.threaded`) execute the paper's
protocol inside one interpreter.  This package runs it as *actual OS
processes* — one root splitter, ``k`` second-level splitters, and
``m*n`` tile decoders — exchanging framed binary messages over the
socket transport in :mod:`repro.net.channel`, supervised from the
calling process by :class:`ClusterSupervisor`.
"""

from repro.cluster.runtime.config import WallConfig
from repro.cluster.runtime.supervisor import ClusterError, ClusterSupervisor

__all__ = ["WallConfig", "ClusterSupervisor", "ClusterError"]
