"""Consistent-hash ring for session placement.

The gateway shards sessions across daemons by hashing the stream id onto
a ring of virtual nodes (``vnodes`` per daemon, SHA-1 positioned).  The
two properties the fleet tests pin:

- **stability** — adding or removing one daemon remaps only ~1/N of the
  keyspace; every other key keeps its placement, so a scale-up does not
  reshuffle the whole fleet;
- **determinism** — placement is a pure function of (members, key).  Two
  gateways (or one gateway across a restart) with the same member set
  place every key identically.  That is why positions come from SHA-1,
  never from Python's randomized ``hash()``.

``place`` takes an optional ``accept`` predicate so capacity-aware
placement composes with hashing: walk clockwise from the key's position
and take the first *distinct* node the predicate admits — the hash
chooses the home, live admission state chooses among the survivors.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, List, Optional, Sequence, Tuple


def _position(label: str) -> int:
    """A stable 64-bit ring position for a label."""
    return int.from_bytes(
        hashlib.sha1(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent hashing with virtual nodes."""

    def __init__(self, nodes: Sequence[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("need at least one virtual node per member")
        self.vnodes = vnodes
        self._ring: List[Tuple[int, str]] = []  # (position, node), sorted
        self._keys: List[int] = []  # positions only, for bisect
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for v in range(self.vnodes):
            pos = _position(f"{node}#{v}")
            i = bisect.bisect(self._keys, pos)
            self._keys.insert(i, pos)
            self._ring.insert(i, (pos, node))

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        kept = [(pos, n) for pos, n in self._ring if n != node]
        self._ring = kept
        self._keys = [pos for pos, _ in kept]

    def preference(self, key: str) -> List[str]:
        """All members, in the key's clockwise walk order (deduplicated)."""
        if not self._ring:
            return []
        start = bisect.bisect(self._keys, _position(key)) % len(self._ring)
        seen: List[str] = []
        for off in range(len(self._ring)):
            node = self._ring[(start + off) % len(self._ring)][1]
            if node not in seen:
                seen.append(node)
                if len(seen) == len(self._nodes):
                    break
        return seen

    def place(
        self, key: str, accept: Optional[Callable[[str], bool]] = None
    ) -> Optional[str]:
        """The key's home: first node on its walk that ``accept`` admits
        (or simply the first, when no predicate is given)."""
        for node in self.preference(key):
            if accept is None or accept(node):
                return node
        return None
