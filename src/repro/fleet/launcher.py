"""Spawn wall-service daemons as real OS processes.

The fleet's failure model is process death (a SIGKILLed daemon, an OOM
kill, a node reboot), so the gateway's daemons must be *processes*, not
threads — a thread cannot be killed out from under its sessions.  Each
daemon gets its own run directory under the gateway's (rendezvous,
traces, and logs stay per-daemon for the merged report's per-daemon
attribution), a distinct ``trace_name``, and a disjoint ``sid_offset``
namespace so session ids never collide across the fleet.

Run one by hand with ``python -m repro.fleet.launcher <rundir>`` after
writing ``daemon.json`` (a :class:`ServiceConfig` document) there — which
is exactly what :func:`spawn_daemon` does.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.service.daemon import ServiceConfig

DAEMON_CONFIG = "daemon.json"


def _repro_pythonpath() -> str:
    """PYTHONPATH that lets a bare interpreter import this package."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH", "")
    return src_root + (os.pathsep + existing if existing else "")


@dataclass
class DaemonProcess:
    """A spawned daemon: its identity, rundir, and child process."""

    name: str
    rundir: Path
    proc: subprocess.Popen

    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> int:
        """SIGKILL — the fleet tests' failure injection."""
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
        return self.proc.wait()

    def stop(self, grace_s: float = 5.0) -> int:
        """Terminate, escalating to kill past the grace period."""
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                return self.proc.wait(timeout=grace_s)
            except subprocess.TimeoutExpired:
                self.proc.kill()
        return self.proc.wait()


def spawn_daemon(
    rundir: Path, name: str, config: ServiceConfig, ready_timeout: float = 15.0
) -> DaemonProcess:
    """Start one wall-service daemon under ``rundir`` and wait until its
    rendezvous file (socket or published address) exists."""
    rundir = Path(rundir)
    rundir.mkdir(parents=True, exist_ok=True)
    (rundir / DAEMON_CONFIG).write_text(json.dumps(config.to_dict()))
    env = os.environ.copy()
    env["PYTHONPATH"] = _repro_pythonpath()
    log = open(rundir / "daemon.log", "wb")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.fleet.launcher", str(rundir)],
        stdout=log,
        stderr=subprocess.STDOUT,
        env=env,
    )
    log.close()  # the child holds its own descriptor
    handle = DaemonProcess(name=name, rundir=rundir, proc=proc)
    marker = (
        rundir / "service.sock"
        if config.transport == "unix"
        else rundir / "service.addr"
    )
    deadline = time.monotonic() + ready_timeout
    while not marker.exists():
        if proc.poll() is not None:
            tail = (rundir / "daemon.log").read_text(errors="replace")[-2000:]
            raise RuntimeError(
                f"daemon {name!r} exited {proc.returncode} before listening:\n{tail}"
            )
        if time.monotonic() >= deadline:
            handle.stop()
            raise RuntimeError(f"daemon {name!r} not listening after {ready_timeout}s")
        time.sleep(0.02)
    return handle


def _main(argv) -> int:
    from repro.service.daemon import WallService

    rundir = Path(argv[0])
    config = ServiceConfig.from_dict(
        json.loads((rundir / DAEMON_CONFIG).read_text())
    )
    svc = WallService(rundir, config)
    svc.start()
    try:
        svc.serve_forever()
    finally:
        svc.stop()
    return 0


if __name__ == "__main__":
    sys.exit(_main(sys.argv[1:]))
