"""Fleet gateway: sharded multi-daemon serving for the wall service.

One :class:`FleetGateway` front-ends N :class:`~repro.service.daemon.WallService`
daemons: sessions are placed by consistent hashing on the stream id with
capacity-aware overrides from each daemon's live admission state, daemon
health is probed continuously, and a daemon death mid-session triggers
failover — the session's stream is replayed to a healthy daemon and
resumed at the next I-picture, with the dropped pictures accounted in
telemetry.  Gateway↔daemon control traffic runs over the reliable-link
layer (:mod:`repro.net.reliable`) so a socket flap never loses a request.
"""

from repro.fleet.gateway import FleetConfig, FleetGateway, GATEWAY_TRACE
from repro.fleet.launcher import DaemonProcess, spawn_daemon
from repro.fleet.ring import HashRing

__all__ = [
    "FleetConfig",
    "FleetGateway",
    "GATEWAY_TRACE",
    "HashRing",
    "DaemonProcess",
    "spawn_daemon",
]
