"""The fleet gateway: one front door, N wall-service daemons behind it.

The gateway listens under the same run-directory rendezvous convention
as a single daemon (``service.sock`` / ``service.addr``), so an
unmodified :class:`~repro.service.client.ServiceClient` — and therefore
``repro submit`` / ``repro sessions`` — talks to a fleet exactly as it
talks to one daemon.  Behind the listener:

- **placement** — a consistent-hash ring over the daemons
  (:class:`~repro.fleet.ring.HashRing`, keyed on the stream id) picks the
  session's home; the walk skips daemons that are down, draining, or
  whose live admission state (``headroom_mpps`` exported by
  :meth:`AdmissionController.export_state`) cannot *accept* the session
  outright, so hashing decides ties but capacity decides feasibility;
- **health** — a monitor thread pings every daemon, caches its admission
  snapshot, polls per-session progress, and watches the child process
  itself: a SIGKILLed daemon is declared dead on the next poll, not
  after a request times out against it;
- **failover** — when a daemon dies, every non-terminal session it
  carried is replayed to a healthy daemon: the gateway re-submits the
  session's exact stream bytes with ``start_at`` set to the first
  I-picture at or past the dead daemon's last observed progress point.
  Decode resumes bit-identically to a clean decode from that anchor;
  the pictures between the progress point and the anchor are *accounted*
  (``failover`` trace event, ``failover_dropped`` in status), never
  silently lost.  A session past its last anchor completes with its tail
  dropped rather than replaying from nothing;
- **reliability** — gateway↔daemon control RPC rides the reliable-link
  layer (:mod:`repro.net.reliable`), so a daemon's socket flapping under
  load retransmits instead of surfacing ``PeerDeadError`` mid-submit.

Session ids are rewritten at the boundary: clients see the gateway's
stable ``gsid`` while each incarnation of the session has a daemon-local
sid in that daemon's ``sid_offset`` namespace.  A failover changes the
mapping, never the gsid.
"""

from __future__ import annotations

import json
import subprocess
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.net.channel import (
    Channel,
    ChannelClosed,
    ChannelError,
    ChannelTimeout,
    Listener,
)
from repro.obs.plane import obs_snapshot, snapshot_text
from repro.perf.metrics import families
from repro.perf.trace import TraceWriter
from repro.service.admission import REJECT_DRAINING
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import SERVICE_NAME, ServiceConfig
from repro.service.protocol import (
    SVC_REQUEST,
    SVC_RESPONSE,
    VERB_CANCEL,
    VERB_DRAIN,
    VERB_LIST,
    VERB_PING,
    VERB_SHUTDOWN,
    VERB_STATS,
    VERB_STATUS,
    VERB_SUBMIT,
    VERB_UNDRAIN,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    encode_response,
)
from repro.service.session import i_picture_indices
from repro.fleet.launcher import DaemonProcess, spawn_daemon
from repro.fleet.ring import HashRing
from repro.workloads.streams import StreamSpec

GATEWAY_TRACE = "gateway.trace.jsonl"

#: Daemon health states.
UP = "up"
SUSPECT = "suspect"
DOWN = "down"

#: Terminal session states (the service protocol's vocabulary).
_TERMINAL = ("completed", "cancelled", "failed")


@dataclass
class FleetConfig:
    """Gateway-side knobs plus the per-daemon service template."""

    daemons: int = 2
    transport: str = "unix"
    vnodes: int = 64
    health_interval: float = 0.25  # probe period per daemon
    down_after: int = 2  # consecutive failed probes -> dead
    reliable_links: bool = True  # gateway<->daemon RPC over reliable links
    link_resume_timeout: float = 2.0
    request_timeout: float = 30.0
    sid_stride: int = 1_000_000  # per-daemon session-id namespace width
    stats_interval: float = 1.0  # VERB_STATS scrape period per daemon
    max_burn: float = 0.0  # placement avoids daemons burning >= this (0 = off)
    service: ServiceConfig = field(default_factory=ServiceConfig)

    def __post_init__(self) -> None:
        if self.daemons < 1:
            raise ValueError("a fleet needs at least one daemon")
        if self.transport not in ("unix", "tcp"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.down_after < 1:
            raise ValueError("down_after must be at least one probe")

    def daemon_config(self, index: int) -> ServiceConfig:
        cfg = ServiceConfig(**asdict(self.service))
        cfg.transport = self.transport
        cfg.trace_name = f"daemon{index}"
        cfg.sid_offset = index * self.sid_stride
        return cfg


class DaemonHandle:
    """The gateway's view of one daemon: client, health, admission."""

    def __init__(
        self,
        name: str,
        rundir: Path,
        config: FleetConfig,
        proc: Optional[DaemonProcess] = None,
    ):
        self.name = name
        self.rundir = Path(rundir)
        self.config = config
        self.proc = proc
        self.state = UP
        self.draining = False
        self.fail_count = 0
        self.admission: Dict[str, Any] = {}  # last export_state snapshot
        self.stats: Dict[str, Any] = {}  # last VERB_STATS snapshot
        self.slo: Dict[str, Any] = {}  # last SLO rollup ({"worst_burn": ...})
        self._stats_at = 0.0  # monotonic time of the last stats scrape
        self._client: Optional[ServiceClient] = None
        self._lock = threading.Lock()  # serializes the RPC conversation

    # ------------------------------------------------------------------ #

    def process_dead(self) -> bool:
        return self.proc is not None and not self.proc.alive()

    def _connect(self) -> ServiceClient:
        return ServiceClient(
            self.rundir,
            transport=self.config.transport,
            connect_timeout=5.0,
            request_timeout=self.config.request_timeout,
            reliable=self.config.reliable_links,
            link_resume_timeout=self.config.link_resume_timeout,
        )

    def call(self, verb: str, fields: Dict[str, Any], blob: bytes = b"") -> Dict:
        """One RPC to this daemon; connection faults close the client so
        the next call re-dials (a reliable link re-dials internally)."""
        with self._lock:
            if self._client is None:
                self._client = self._connect()
            try:
                return self._client.request(verb, fields, blob)
            except (ChannelError, OSError):
                try:
                    self._client.close()
                finally:
                    self._client = None
                raise

    def close(self) -> None:
        with self._lock:
            if self._client is not None:
                try:
                    self._client.close()
                except Exception:  # noqa: BLE001 - teardown
                    pass
                self._client = None

    def accepts(self, demand_mpps: float) -> bool:
        """Placement predicate: alive, not draining, enough live headroom
        to *accept* (not queue) the session, and — when the fleet sets
        ``max_burn`` — not currently burning through its SLO budget.
        Placement's fallback pass ignores this predicate, so a fleet-wide
        burn never strands a submission."""
        if self.state == DOWN or self.draining:
            return False
        if self.config.max_burn > 0:
            burn = float(self.slo.get("worst_burn", 0.0) or 0.0)
            if burn >= self.config.max_burn:
                return False
        headroom = self.admission.get("headroom_mpps")
        if headroom is None:
            return True  # no snapshot yet: let admission decide
        return headroom >= demand_mpps

    def snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "state": self.state,
            "draining": self.draining,
            "admission": dict(self.admission),
            "slo": dict(self.slo),
        }


@dataclass
class GatewaySession:
    """One client-visible session across its (possibly many) incarnations."""

    gsid: int
    key: str  # placement key (stream id)
    name: str
    spec: Dict[str, Any]  # StreamSpec document, for replay
    fields: Dict[str, Any]  # original submit fields (weight, slowdown, ...)
    stream: bytes  # exact bytes every incarnation decodes
    i_indices: List[int]  # resumable anchors of the stream
    daemon: str = ""
    sid: int = 0  # daemon-local sid of the current incarnation
    start_at: int = 0
    processed: int = 0  # last observed progress (coded pictures)
    failovers: int = 0
    failover_dropped: int = 0  # pictures lost across all failovers
    terminal: Optional[Dict[str, Any]] = None  # gateway-synthesized summary


class FleetGateway:
    """Front-end: admission-aware sharding, health, and failover."""

    def __init__(
        self,
        rundir: Path,
        config: Optional[FleetConfig] = None,
        spawn: bool = True,
    ):
        self.rundir = Path(rundir)
        self.config = config or FleetConfig()
        self.spawn = spawn
        self.ring = HashRing(vnodes=self.config.vnodes)
        self.daemons: Dict[str, DaemonHandle] = {}
        self.sessions: Dict[int, GatewaySession] = {}
        self._next_gsid = 1
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._stop_done = threading.Event()  # cleanup actually finished
        self._stop_lock = threading.Lock()
        # VERB_SHUTDOWN defers its stop until the reply has flushed; the
        # pending reason rides a thread-local (dispatch and conn loop
        # share a thread) so it cannot leak to other connections.
        self._stop_requested = threading.local()
        self._threads: List[threading.Thread] = []
        self._listener: Optional[Listener] = None
        self.tracer: Optional[TraceWriter] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def address(self):
        assert self._listener is not None
        return self._listener.address

    def add_daemon(
        self, name: str, rundir: Path, proc: Optional[DaemonProcess] = None
    ) -> DaemonHandle:
        """Register a daemon (spawned here or attached externally)."""
        handle = DaemonHandle(name, rundir, self.config, proc)
        with self._lock:
            self.daemons[name] = handle
            self.ring.add(name)
        return handle

    def start(self) -> None:
        self.rundir.mkdir(parents=True, exist_ok=True)
        self.tracer = TraceWriter(self.rundir / GATEWAY_TRACE, "gateway")
        if self.spawn:
            for i in range(self.config.daemons):
                name = f"daemon{i}"
                proc = spawn_daemon(
                    self.rundir / name, name, self.config.daemon_config(i)
                )
                self.add_daemon(name, proc.rundir, proc)
                self.tracer.emit("daemon_spawn", daemon=name, pid=proc.proc.pid)
        if self.config.transport == "unix":
            self._listener = Listener(
                ("unix", str(self.rundir / f"{SERVICE_NAME}.sock"))
            )
        else:
            self._listener = Listener(("tcp", "127.0.0.1", 0))
            host, port = self._listener.address[1], self._listener.address[2]
            tmp = self.rundir / f"{SERVICE_NAME}.addr.tmp"
            tmp.write_text(f"{host} {port}")
            tmp.rename(self.rundir / f"{SERVICE_NAME}.addr")
        self.tracer.emit(
            "gateway_start",
            daemons=sorted(self.daemons),
            transport=self.config.transport,
            reliable_links=self.config.reliable_links,
        )
        for target, tname in (
            (self._accept_loop, "gw-accept"),
            (self._health_loop, "gw-health"),
        ):
            t = threading.Thread(target=target, name=tname, daemon=True)
            t.start()
            self._threads.append(t)

    def stop(self, reason: str = "requested") -> None:
        with self._stop_lock:
            claimed = not self._stop.is_set()
            if claimed:
                self._stop.set()
        if not claimed:
            # Another thread owns the teardown.  Wait it out: a caller
            # returning from stop() may exit the process, which must not
            # happen while the owner is still shutting daemons down and
            # flushing the gateway trace.
            self._stop_done.wait(timeout=30.0)
            return
        try:
            self._stop_body(reason)
        finally:
            self._stop_done.set()

    def _stop_body(self, reason: str) -> None:
        if self._listener is not None:
            self._listener.close()
        for t in self._threads:
            t.join(timeout=5.0)
        for handle in self.daemons.values():
            acked = False
            if handle.state != DOWN:
                try:
                    handle.call(VERB_SHUTDOWN, {"reason": f"fleet stop: {reason}"})
                    acked = True
                except (ChannelError, OSError, ServiceError):
                    pass
            handle.close()
            if handle.proc is not None:
                if acked:
                    # the daemon acknowledged the shutdown: let it finish
                    # its own teardown (summaries, service_stop trace,
                    # trace flush) before escalating to SIGTERM
                    try:
                        handle.proc.proc.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:
                        pass
                handle.proc.stop()
        if self.tracer is not None:
            self.tracer.emit("gateway_stop", reason=reason)
            self.tracer.close()

    def serve_forever(self) -> None:
        try:
            while not self._stop.wait(0.2):
                pass
        except KeyboardInterrupt:
            self.stop("interrupted")

    def __enter__(self) -> "FleetGateway":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # health + failover
    # ------------------------------------------------------------------ #

    def _health_loop(self) -> None:
        while not self._stop.wait(self.config.health_interval):
            for handle in list(self.daemons.values()):
                if handle.state == DOWN:
                    continue
                if handle.process_dead():
                    self._declare_down(handle, "process exited")
                    continue
                try:
                    info = handle.call(VERB_PING, {})
                    handle.admission = info.get("admission", {})
                    handle.draining = bool(info.get("draining", False))
                    handle.fail_count = 0
                    handle.state = UP
                    self._refresh_progress(handle)
                    self._refresh_stats(handle)
                except (ChannelError, OSError, ServiceError):
                    handle.fail_count += 1
                    if handle.fail_count >= self.config.down_after:
                        self._declare_down(handle, "health probes failed")
                    else:
                        handle.state = SUSPECT

    def _refresh_stats(self, handle: DaemonHandle) -> None:
        """Scrape the daemon's obs snapshot at ``stats_interval`` cadence
        (coarser than health probes) and cache it on the handle so the
        gateway's own stats verb and burn-aware placement read a recent
        fleet-wide view without fanning out per request."""
        now = time.monotonic()
        if now - handle._stats_at < self.config.stats_interval:
            return
        try:
            reply = handle.call(VERB_STATS, {})
        except (ChannelError, OSError, ServiceError):
            return  # health probe just passed; stats are best-effort
        handle._stats_at = now
        snap = reply.get("stats", {})
        handle.stats = snap
        handle.slo = dict(snap.get("slo", {}))

    def _refresh_progress(self, handle: DaemonHandle) -> None:
        """Cache per-session progress so failover knows where to resume
        without asking a daemon that no longer exists."""
        try:
            rows = handle.call(VERB_LIST, {})["sessions"]
        except (ChannelError, OSError, ServiceError):
            return
        by_sid = {row["sid"]: row for row in rows}
        with self._lock:
            for gs in self.sessions.values():
                row = by_sid.get(gs.sid) if gs.daemon == handle.name else None
                if row is None:
                    continue
                gs.processed = max(gs.processed, int(row.get("processed", 0)))
                if gs.terminal is None and row.get("state") in _TERMINAL:
                    gs.terminal = self._rewrite(gs, row)

    def _declare_down(self, handle: DaemonHandle, why: str) -> None:
        handle.state = DOWN
        handle.close()
        with self._lock:
            self.ring.remove(handle.name)
            orphans = [
                gs
                for gs in self.sessions.values()
                if gs.daemon == handle.name and gs.terminal is None
            ]
        if self.tracer is not None:
            self.tracer.emit(
                "daemon_down", daemon=handle.name, why=why, orphans=len(orphans)
            )
        for gs in orphans:
            self._failover(gs, handle.name)

    def _failover(self, gs: GatewaySession, from_daemon: str) -> None:
        """Replay one orphaned session onto a healthy daemon, resuming at
        the next I-picture past its last observed progress."""
        t0 = time.monotonic()
        resume_at = next((i for i in gs.i_indices if i >= gs.processed), None)
        if resume_at is None:
            # Past the last anchor: nothing resumable remains.  Complete
            # the session with its tail accounted as failover-dropped.
            dropped = len(self._pictures(gs)) - gs.processed
            gs.failovers += 1
            gs.failover_dropped += max(0, dropped)
            gs.terminal = {
                "sid": gs.gsid,
                "name": gs.name,
                "state": "completed",
                "reason": f"failover from {from_daemon}: tail past last anchor",
                "processed": gs.processed,
                "failovers": gs.failovers,
                "failover_dropped": gs.failover_dropped,
                "daemon": "",
            }
            self._emit_failover(gs, from_daemon, "", gs.processed, None, t0)
            return
        dropped = resume_at - gs.processed
        demand = StreamSpec.from_dict(gs.spec).demand_mpps
        target = self._place(gs.key, demand)
        if target is None:
            gs.terminal = {
                "sid": gs.gsid,
                "name": gs.name,
                "state": "failed",
                "reason": f"failover from {from_daemon}: no healthy daemon",
                "processed": gs.processed,
                "failovers": gs.failovers,
                "failover_dropped": gs.failover_dropped,
                "daemon": "",
            }
            self._emit_failover(gs, from_daemon, "", gs.processed, resume_at, t0)
            return
        fields = dict(gs.fields)
        fields["spec"] = gs.spec
        fields["name"] = gs.name
        fields["start_at"] = resume_at
        try:
            reply = self.daemons[target].call(VERB_SUBMIT, fields, gs.stream)
        except (ChannelError, OSError, ServiceError, KeyError):
            reply = {}
        if "sid" not in reply:
            gs.terminal = {
                "sid": gs.gsid,
                "name": gs.name,
                "state": "failed",
                "reason": f"failover resubmit to {target} rejected",
                "processed": gs.processed,
                "failovers": gs.failovers,
                "failover_dropped": gs.failover_dropped,
                "daemon": "",
            }
            self._emit_failover(gs, from_daemon, target, gs.processed, resume_at, t0)
            return
        gs.failovers += 1
        gs.failover_dropped += max(0, dropped)
        gs.daemon = target
        gs.sid = int(reply["sid"])
        gs.start_at = resume_at
        self._emit_failover(gs, from_daemon, target, gs.processed, resume_at, t0)

    def _emit_failover(
        self,
        gs: GatewaySession,
        from_daemon: str,
        to_daemon: str,
        last_processed: int,
        resume_at: Optional[int],
        t0: float,
    ) -> None:
        if self.tracer is None:
            return
        self.tracer.emit(
            "failover",
            gsid=gs.gsid,
            name=gs.name,
            from_daemon=from_daemon,
            to_daemon=to_daemon,
            last_processed=last_processed,
            resume_at=resume_at,
            dropped_pictures=(
                (resume_at - last_processed) if resume_at is not None else None
            ),
            resume_s=round(time.monotonic() - t0, 6),
        )

    def _pictures(self, gs: GatewaySession) -> List[int]:
        # total coded pictures of the replay stream; cheap via anchors+spec
        n = gs.fields.get("_n_pictures")
        if n is None:
            from repro.mpeg2.parser import PictureScanner

            _seq, pics = PictureScanner(gs.stream).scan()
            n = len(pics)
            gs.fields["_n_pictures"] = n
        return list(range(int(n)))

    # ------------------------------------------------------------------ #
    # placement + verbs
    # ------------------------------------------------------------------ #

    def _place(self, key: str, demand_mpps: float) -> Optional[str]:
        """Hash-walk the ring; admission headroom gates each candidate.
        Falls back to any live, non-draining daemon when none has clean
        headroom — the daemon's own admission may still queue it."""
        with self._lock:
            placed = self.ring.place(
                key,
                accept=lambda n: self.daemons[n].accepts(demand_mpps),
            )
            if placed is not None:
                return placed
            return self.ring.place(
                key,
                accept=lambda n: self.daemons[n].state != DOWN
                and not self.daemons[n].draining,
            )

    def _rewrite(self, gs: GatewaySession, summary: Dict) -> Dict:
        """A daemon-local summary, re-addressed to the gateway namespace."""
        out = dict(summary)
        out["sid"] = gs.gsid
        out["daemon"] = gs.daemon
        out["failovers"] = gs.failovers
        out["failover_dropped"] = gs.failover_dropped
        return out

    def _do_submit(self, fields: Dict, blob: bytes) -> bytes:
        if "spec" not in fields:
            raise ProtocolError("submit needs a 'spec' field")
        spec = StreamSpec.from_dict(fields["spec"])
        name = str(fields.get("name", spec.name))
        # The gateway owns the bytes: synthesize once so every incarnation
        # (and the failover oracle) decodes the identical stream.
        stream = blob if blob else self._synthesize(spec, fields)
        key = str(fields.get("placement_key", name))
        target = self._place(key, spec.demand_mpps)
        if target is None:
            return encode_response(
                True,
                {
                    "admission": {
                        "action": "reject",
                        "reason": REJECT_DRAINING,
                        "detail": "no healthy daemon available",
                    }
                },
            )
        sub_fields = {
            k: v for k, v in fields.items() if k not in ("placement_key",)
        }
        sub_fields["name"] = name
        reply = self.daemons[target].call(VERB_SUBMIT, sub_fields, stream)
        if "sid" not in reply:
            return encode_response(True, reply)
        with self._lock:
            gsid = self._next_gsid
            self._next_gsid += 1
            gs = GatewaySession(
                gsid=gsid,
                key=key,
                name=name,
                spec=dict(fields["spec"]),
                fields={
                    k: v
                    for k, v in sub_fields.items()
                    if k not in ("spec", "start_at")
                },
                stream=stream,
                i_indices=i_picture_indices(stream),
                daemon=target,
                sid=int(reply["sid"]),
                start_at=int(sub_fields.get("start_at", 0)),
            )
            self.sessions[gsid] = gs
        if self.tracer is not None:
            self.tracer.emit(
                "placement",
                gsid=gsid,
                name=name,
                daemon=target,
                sid=gs.sid,
                demand_mpps=round(spec.demand_mpps, 4),
            )
        doc = {"sid": gsid, "daemon": target, "admission": reply["admission"]}
        return encode_response(True, doc)

    def _synthesize(self, spec: StreamSpec, fields: Dict) -> bytes:
        from repro.mpeg2.encoder import Encoder, EncoderConfig

        n_frames = int(fields.get("n_frames", min(spec.n_frames, 48)))
        frames = spec.synthetic_frames(
            n_frames, max_width=self.config.service.synth_max_width
        )
        cfg = EncoderConfig(gop_size=spec.gop_size, b_frames=spec.b_frames)
        return Encoder(cfg).encode(frames)

    def _session(self, fields: Dict) -> GatewaySession:
        try:
            gsid = int(fields["sid"])
        except (KeyError, TypeError, ValueError):
            raise ProtocolError("need an integer 'sid'")
        with self._lock:
            gs = self.sessions.get(gsid)
        if gs is None:
            raise ProtocolError(f"no session {gsid}")
        return gs

    def _do_status(self, fields: Dict) -> bytes:
        gs = self._session(fields)
        if gs.terminal is not None:
            return encode_response(True, {"session": gs.terminal})
        try:
            reply = self.daemons[gs.daemon].call(VERB_STATUS, {"sid": gs.sid})
        except (ChannelError, OSError, KeyError):
            # daemon unreachable right now: report what the gateway knows
            return encode_response(
                True,
                {
                    "session": {
                        "sid": gs.gsid,
                        "name": gs.name,
                        "state": "running",
                        "daemon": gs.daemon,
                        "processed": gs.processed,
                        "failovers": gs.failovers,
                        "failover_dropped": gs.failover_dropped,
                    }
                },
            )
        summary = self._rewrite(gs, reply["session"])
        gs.processed = max(gs.processed, int(summary.get("processed", 0)))
        if summary.get("state") in _TERMINAL:
            gs.terminal = summary
        return encode_response(True, {"session": summary})

    def _do_cancel(self, fields: Dict) -> bytes:
        gs = self._session(fields)
        reason = str(fields.get("reason", "cancelled by client"))
        if gs.terminal is not None:
            return encode_response(True, {"sid": gs.gsid, "cancelled": False})
        reply = self.daemons[gs.daemon].call(
            VERB_CANCEL, {"sid": gs.sid, "reason": reason}
        )
        return encode_response(
            True, {"sid": gs.gsid, "cancelled": bool(reply.get("cancelled"))}
        )

    def _do_list(self) -> bytes:
        with self._lock:
            items = list(self.sessions.values())
        rows = []
        for gs in items:
            if gs.terminal is not None:
                rows.append(gs.terminal)
                continue
            try:
                reply = self.daemons[gs.daemon].call(VERB_STATUS, {"sid": gs.sid})
                rows.append(self._rewrite(gs, reply["session"]))
            except (ChannelError, OSError, ServiceError, KeyError):
                rows.append(
                    {
                        "sid": gs.gsid,
                        "name": gs.name,
                        "state": "running",
                        "daemon": gs.daemon,
                        "processed": gs.processed,
                        "failovers": gs.failovers,
                        "failover_dropped": gs.failover_dropped,
                    }
                )
        return encode_response(True, {"sessions": rows})

    def _do_drain(self, verb: str, fields: Dict) -> bytes:
        name = fields.get("daemon")
        if not name or name not in self.daemons:
            raise ProtocolError(f"drain needs a known 'daemon' (got {name!r})")
        handle = self.daemons[name]
        reply = handle.call(verb, fields)
        handle.draining = bool(reply.get("draining", verb == VERB_DRAIN))
        if self.tracer is not None:
            self.tracer.emit(
                "daemon_drain" if verb == VERB_DRAIN else "daemon_undrain",
                daemon=name,
            )
        return encode_response(True, {"daemon": name, **reply})

    def _info(self) -> Dict:
        with self._lock:
            daemons = [h.snapshot() for h in self.daemons.values()]
            n_sessions = len(self.sessions)
            failovers = sum(gs.failovers for gs in self.sessions.values())
        live = [d for d in daemons if d["state"] != DOWN]
        capacity = sum(d["admission"].get("capacity_mpps", 0.0) for d in live)
        active = sum(d["admission"].get("active_demand_mpps", 0.0) for d in live)
        return {
            "protocol": PROTOCOL_VERSION,
            "role": "gateway",
            "daemons": sorted(daemons, key=lambda d: d["name"]),
            "capacity_mpps": capacity,
            "active_demand_mpps": round(active, 4),
            "utilization": round(active / capacity, 4) if capacity else 0.0,
            "workers": len(live),
            "queued": sum(d["admission"].get("queued", 0) for d in live),
            "sessions": {"tracked": n_sessions},
            "leases": 0,
            "failovers": failovers,
        }

    def _do_stats(self, fields: Dict) -> bytes:
        """The gateway's obs snapshot: its own process registry plus the
        most recent cached snapshot from every daemon (scraped by the
        health loop), so one scrape answers for the whole fleet."""
        info = self._info()
        with self._lock:
            daemon_stats = {
                h.name: dict(h.stats) for h in self.daemons.values()
            }
        burns = [
            float(d.get("slo", {}).get("worst_burn", 0.0) or 0.0)
            for d in daemon_stats.values()
        ]
        fam = families()
        fam.gauge(
            "repro_fleet_capacity_mpps", "live fleet decode capacity"
        ).set(info["capacity_mpps"])
        fam.gauge(
            "repro_fleet_active_demand_mpps", "admitted demand across the fleet"
        ).set(info["active_demand_mpps"])
        fam.gauge(
            "repro_fleet_daemons_up", "daemons answering health probes"
        ).set(info["workers"])
        fam.gauge(
            "repro_fleet_failovers", "sessions replayed after a daemon death"
        ).set(info["failovers"])
        fam.gauge(
            "repro_fleet_worst_burn", "worst SLO burn rate across daemons"
        ).set(max(burns, default=0.0))
        snap = obs_snapshot(
            extra={
                "role": "gateway",
                "fleet": {
                    "capacity_mpps": info["capacity_mpps"],
                    "active_demand_mpps": info["active_demand_mpps"],
                    "utilization": info["utilization"],
                    "daemons_up": info["workers"],
                    "queued": info["queued"],
                    "sessions": info["sessions"]["tracked"],
                    "failovers": info["failovers"],
                    "worst_burn": max(burns, default=0.0),
                },
                "daemons": daemon_stats,
            }
        )
        doc: Dict[str, Any] = {"stats": snap}
        if fields.get("format") == "prometheus":
            doc["text"] = snapshot_text(snap)
        return encode_response(True, doc)

    def _dispatch(self, verb: str, fields: Dict, blob: bytes) -> bytes:
        if verb == VERB_PING:
            return encode_response(True, self._info())
        if verb == VERB_STATS:
            return self._do_stats(fields)
        if verb == VERB_SUBMIT:
            return self._do_submit(fields, blob)
        if verb == VERB_STATUS:
            return self._do_status(fields)
        if verb == VERB_CANCEL:
            return self._do_cancel(fields)
        if verb == VERB_LIST:
            return self._do_list()
        if verb in (VERB_DRAIN, VERB_UNDRAIN):
            return self._do_drain(verb, fields)
        if verb == VERB_SHUTDOWN:
            reason = fields.get("reason", "client request")
            self._stop_requested.reason = reason  # stop after the reply flushes
            return encode_response(True, {"stopping": True, "reason": reason})
        return encode_response(False, {}, error=f"unhandled verb {verb!r}")

    # ------------------------------------------------------------------ #
    # front listener
    # ------------------------------------------------------------------ #

    def _accept_loop(self) -> None:
        assert self._listener is not None
        n = 0
        while not self._stop.is_set():
            try:
                ch = self._listener.accept(timeout=0.25)
            except ChannelTimeout:
                continue
            except (ChannelError, OSError):
                if self._stop.is_set():
                    return
                continue
            ch.name = f"gw-conn{n}"
            ch.start_heartbeat(0.25)
            t = threading.Thread(
                target=self._handle, args=(ch,), name=f"gw-conn{n}", daemon=True
            )
            t.start()
            n += 1

    def _handle(self, ch: Channel) -> None:
        try:
            while not self._stop.is_set():
                try:
                    msg = ch.recv(timeout=0.5)
                except ChannelTimeout:
                    continue
                if msg.type != SVC_REQUEST:
                    ch.send(
                        SVC_RESPONSE,
                        encode_response(
                            False, {}, error=f"unexpected message type {msg.type}"
                        ),
                    )
                    continue
                try:
                    verb, fields, blob = decode_request(msg.payload)
                    reply = self._dispatch(verb, fields, blob)
                except ProtocolError as exc:
                    reply = encode_response(False, {}, error=str(exc))
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    reply = encode_response(
                        False, {}, error=f"{type(exc).__name__}: {exc}"
                    )
                ch.send(SVC_RESPONSE, reply)
                if getattr(self._stop_requested, "reason", None) is not None:
                    return
                if self._stop.is_set():
                    return
        except (ChannelClosed, ChannelError):
            pass
        finally:
            self._begin_deferred_stop()
            ch.close()

    def _begin_deferred_stop(self) -> None:
        """Start the teardown a VERB_SHUTDOWN deferred until its reply
        flushed.  Stopping from the dispatch itself races the requester's
        ack: the foreground serve loop wakes on ``_stop`` and exits the
        process while the handler thread is still writing the reply, so
        the client sees EOF instead of its acknowledgement."""
        pending = getattr(self._stop_requested, "reason", None)
        if pending is not None:
            self._stop_requested.reason = None
            threading.Thread(
                target=self.stop, args=(pending,), name="gw-stop", daemon=True
            ).start()

    # ------------------------------------------------------------------ #
    # convenience (tests, benchmarks)
    # ------------------------------------------------------------------ #

    def kill_daemon(self, name: str) -> None:
        """SIGKILL a spawned daemon — fault injection for tests/benchmarks."""
        handle = self.daemons[name]
        if handle.proc is None:
            raise RuntimeError(f"daemon {name!r} was not spawned by this gateway")
        handle.proc.kill()

    def merged_trace_dir(self) -> Path:
        """The directory ``repro trace-report --recursive`` should read:
        gateway trace at the top, one subdirectory per daemon."""
        return self.rundir
